package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"rvpsim/internal/obs"
	"rvpsim/internal/server"
)

// Watch consumes a job's live Server-Sent Events stream, calling fn
// for every event until the terminal done/failed event arrives (fn is
// called for that one too), then returns the event stream's last event.
// after resumes past a known sequence number (0 from the start).
//
// Dropped connections are transparently reconnected with the standard
// Last-Event-ID header carrying the last sequence seen, so a daemon
// hiccup costs a watcher nothing the server's event ring still holds.
// Permanent HTTP errors (404 unknown job, 501 telemetry disabled) are
// returned as-is.
func (c *Client) Watch(ctx context.Context, id string, after int64, fn func(server.JobEvent)) (server.JobEvent, error) {
	var last server.JobEvent
	last.Seq = after
	attempt := 0
	for {
		before := last.Seq
		ev, err := c.watchOnce(ctx, id, &last, fn)
		if err == nil {
			return ev, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		var he *httpError
		if errors.As(err, &he) && he.status != 0 && he.status < 500 {
			return last, err
		}
		// Capped exponential backoff with jitter between reconnects; a
		// connection that made progress (delivered events) resets the
		// schedule, so a flaky-but-live stream isn't punished like a
		// down server.
		if last.Seq > before {
			attempt = 0
		}
		delay := c.backoff.delay(attempt, c.rand)
		attempt++
		c.log.Debug("watch stream dropped; reconnecting", "job", id, "after", last.Seq, "delay", delay, "error", err)
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// watchOnce runs one SSE connection until terminal event or stream end.
// A nil error means the terminal event was seen; otherwise the caller
// decides whether to reconnect from last.Seq.
func (c *Client) watchOnce(ctx context.Context, id string, last *server.JobEvent, fn func(server.JobEvent)) (server.JobEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return *last, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if last.Seq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", last.Seq))
	}
	// SSE streams outlive any fixed client timeout; strip it for this
	// request only (ctx still bounds the watch).
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return *last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return *last, decodeError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() == 0 {
				continue // keepalive or id/event-only frame
			}
			var ev server.JobEvent
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				data.Reset()
				continue // tolerate frames we do not understand
			}
			data.Reset()
			*last = ev
			fn(ev)
			if ev.Type == server.EvDone || ev.Type == server.EvFailed {
				return ev, nil
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/comment lines; Seq inside the JSON payload is
			// authoritative, so these carry no extra information.
		}
	}
	if err := sc.Err(); err != nil {
		return *last, err
	}
	return *last, errors.New("event stream ended before the job finished")
}

// Trace fetches the daemon-side spans of a job's trace. Merge them
// with the client tracer's own spans for the cross-process picture.
func (c *Client) Trace(ctx context.Context, id string) ([]obs.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	return spans, nil
}

// Spans returns the client tracer's collected spans (nil without
// WithTracer).
func (c *Client) Spans() []obs.Span { return c.tracer.Spans() }
