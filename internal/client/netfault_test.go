package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"rvpsim/internal/netfault"
	"rvpsim/internal/server"
)

// TestSubmitRetryResendsFullBody is the regression test for the
// drained-body retry bug: the first attempt's response connection is
// reset after the request was delivered, so the retry must rebuild the
// request body from scratch (http.Request.GetBody) instead of resending
// an empty or half-drained reader.
func TestSubmitRetryResendsFullBody(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(b))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.StateQueued, Spec: testSpec})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	inj := netfault.NewInjector()
	inj.FailAt(netfault.Plan{At: 0, Kind: netfault.KindReset})
	hc := &http.Client{Transport: netfault.NewTransport(nil, inj)}

	c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1), WithHTTPClient(hc))
	if _, err := c.Submit(context.Background(), testSpec, "k"); err != nil {
		t.Fatalf("Submit: %v (trace %v)", err, inj.Trace())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 {
		t.Fatalf("server saw %d attempts, want 2 (reset delivers the request, then kills the response)", len(bodies))
	}
	if bodies[0] == "" {
		t.Fatalf("first attempt delivered an empty body")
	}
	if bodies[1] != bodies[0] {
		t.Fatalf("retry body differs from first attempt:\n  first: %q\n  retry: %q", bodies[0], bodies[1])
	}
	var spec struct {
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal([]byte(bodies[1]), &spec); err != nil || spec.Workload != testSpec.Workload {
		t.Fatalf("retry body is not the original spec: %q (err %v)", bodies[1], err)
	}
}

// TestSubmitPropagatesCallerDeadline: the X-Rvp-Deadline header must
// carry the caller's own deadline — and must NOT appear when the caller
// has none, even though WithMaxElapsed narrows the request context.
func TestSubmitPropagatesCallerDeadline(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		if _, ok := r.Header[server.DeadlineHeader]; ok {
			headers = append(headers, r.Header.Get(server.DeadlineHeader))
		} else {
			headers = append(headers, "<absent>")
		}
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.StateQueued})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()), WithMaxElapsed(time.Minute))

	// No caller deadline: the retry budget must not leak into the header.
	if _, err := c.Submit(context.Background(), testSpec, "k1"); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Caller deadline: propagated as unix microseconds.
	dl := time.Now().Add(45 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	if _, err := c.Submit(ctx, testSpec, "k2"); err != nil {
		t.Fatalf("Submit with deadline: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(headers) != 2 {
		t.Fatalf("attempts = %d, want 2", len(headers))
	}
	if headers[0] != "<absent>" {
		t.Fatalf("deadline header sent without a caller deadline: %q (the WithMaxElapsed budget leaked)", headers[0])
	}
	if headers[1] != fmt.Sprintf("%d", dl.UnixMicro()) {
		t.Fatalf("deadline header = %q, want %d", headers[1], dl.UnixMicro())
	}
}

// TestSubmitSendsTenantHeader: WithTenant stamps every request.
func TestSubmitSendsTenantHeader(t *testing.T) {
	var mu sync.Mutex
	var tenants []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		tenants = append(tenants, r.Header.Get(server.TenantHeader))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.StateQueued})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()), WithTenant("team-a"))
	if _, err := c.Submit(context.Background(), testSpec, "k"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(tenants) != 1 || tenants[0] != "team-a" {
		t.Fatalf("tenant headers = %q, want [team-a]", tenants)
	}
}

// sseBackend serves a job event stream that honors Last-Event-ID,
// recording the resume points clients present. Events run 1..total with
// the last one terminal.
type sseBackend struct {
	total int

	mu      sync.Mutex
	conns   int
	resumes []int64
}

func (s *sseBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		var after int64
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			fmt.Sscanf(v, "%d", &after)
		}
		s.mu.Lock()
		s.conns++
		s.resumes = append(s.resumes, after)
		s.mu.Unlock()

		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		for seq := after + 1; seq <= int64(s.total); seq++ {
			ev := server.JobEvent{Seq: seq, Job: "j1", Type: server.EvProgress}
			if seq == int64(s.total) {
				ev.Type = server.EvDone
			}
			b, _ := json.Marshal(ev)
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, b)
			if fl != nil {
				fl.Flush()
			}
			time.Sleep(15 * time.Millisecond)
		}
	})
	return mux
}

// TestWatchResumesAcrossInjectedReset puts the SSE stream behind a
// netfault proxy that resets the connection mid-stream, and asserts the
// watcher resumes via Last-Event-ID with a dense, duplicate-free event
// sequence. The backend replays from the presented resume point, so an
// ignored Last-Event-ID would surface as duplicates and an overshot one
// as a gap — the assertions are self-enforcing.
func TestWatchResumesAcrossInjectedReset(t *testing.T) {
	be := &sseBackend{total: 6}
	ts := httptest.NewServer(be.handler())
	defer ts.Close()
	tu, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	inj := netfault.NewInjector()
	// Reset a response-direction read a few ops in: past the connect and
	// response headers, mid event stream. Everything later flows clean,
	// so the reconnect succeeds.
	inj.FailAt(netfault.Plan{At: 4, Kind: netfault.KindReset})
	proxy, err := netfault.NewProxy(tu.Host, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := New(proxy.URL(), WithBackoff(fastBackoff()), WithSeed(1))
	var seqs []int64
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	last, err := c.Watch(ctx, "j1", 0, func(ev server.JobEvent) {
		seqs = append(seqs, ev.Seq)
	})
	if err != nil {
		t.Fatalf("Watch: %v (trace %v)", err, inj.Trace())
	}
	if last.Type != server.EvDone {
		t.Fatalf("terminal event = %+v", last)
	}
	if len(seqs) != be.total {
		t.Fatalf("saw %d events %v, want exactly %d (no gaps, no duplicates); trace %v",
			len(seqs), seqs, be.total, inj.Trace())
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("event %d has seq %d; stream not dense: %v", i, s, seqs)
		}
	}
	be.mu.Lock()
	conns, resumes := be.conns, append([]int64(nil), be.resumes...)
	be.mu.Unlock()
	if conns < 2 {
		t.Fatalf("stream was never cut (%d connections); the injected reset did not land: trace %v", conns, inj.Trace())
	}
	// At least one reconnect presented a non-zero resume point.
	var resumed bool
	for _, r := range resumes[1:] {
		if r > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no reconnect carried Last-Event-ID: resumes %v", resumes)
	}
}
