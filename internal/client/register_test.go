package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegisterWorkerRetriesUntilCoordinatorUp: registration survives a
// coordinator that is still coming up (503s), sends the worker URL
// verbatim, and stops on acceptance.
func TestRegisterWorkerRetriesUntilCoordinatorUp(t *testing.T) {
	var calls atomic.Int64
	var gotURL atomic.Value
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/workers" {
			t.Errorf("unexpected request: %s %s", r.Method, r.URL.Path)
		}
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var body struct {
			URL string `json:"url"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		gotURL.Store(body.URL)
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(map[string]string{"registered": body.URL})
	}))
	defer coord.Close()

	c := New(coord.URL,
		WithBackoff(Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2}),
		WithSeed(1))
	if err := c.RegisterWorker(context.Background(), "http://127.0.0.1:9999"); err != nil {
		t.Fatalf("RegisterWorker: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("coordinator saw %d attempts, want 3", n)
	}
	if got := gotURL.Load(); got != "http://127.0.0.1:9999" {
		t.Fatalf("registered URL %v", got)
	}
}

// TestRegisterWorkerPermanentRejection: a 400 (bad worker URL) is not
// retried.
func TestRegisterWorkerPermanentRejection(t *testing.T) {
	var calls atomic.Int64
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "bad url"})
	}))
	defer coord.Close()

	c := New(coord.URL, WithBackoff(Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2}))
	if err := c.RegisterWorker(context.Background(), "not-a-url"); err == nil {
		t.Fatalf("bad URL registered successfully")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("permanent rejection retried: %d attempts", n)
	}
}
