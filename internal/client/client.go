// Package client is the retrying rvpd client: idempotency-keyed job
// submission with capped exponential backoff + jitter that honors the
// server's Retry-After hints, plus status polling and a wait loop.
//
// The retry/idempotency contract: every logical submission carries one
// idempotency key (caller-supplied or generated once per Submit call),
// and every retry — whether provoked by a 429 shed, a 503 drain/breaker
// rejection, a 5xx, or a transport error — resends the same key. The
// server maps a known key onto the existing job, so "retry until
// accepted" can never double-run a job, and a submission interrupted by
// a daemon restart lands on the recovered job.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
	"rvpsim/internal/server"
)

// Backoff shapes the retry schedule: attempt n sleeps
// min(Base*Factor^n, Max), then the "equal jitter" split keeps half and
// randomizes the other half so synchronized clients de-correlate. A
// server Retry-After always wins when it asks for longer.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
}

// DefaultBackoff matches the service's shed cadence: quick first
// retries, capped at the queue's own Retry-After ceiling.
func DefaultBackoff() Backoff {
	return Backoff{Base: 100 * time.Millisecond, Max: 30 * time.Second, Factor: 2}
}

// delay computes the jittered sleep before retry attempt n (0-based),
// not yet considering Retry-After.
func (b Backoff) delay(attempt int, rng func() float64) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	half := d / 2
	return time.Duration(half + half*rng())
}

// Client talks to one rvpd instance.
type Client struct {
	base       string // e.g. "http://127.0.0.1:8080"
	hc         *http.Client
	backoff    Backoff
	attempts   int
	maxElapsed time.Duration
	tenant     string
	log        *slog.Logger
	tracer     *obs.Tracer

	mu  sync.Mutex
	rng *rand.Rand
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (tests, timeouts).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithBackoff substitutes the retry schedule.
func WithBackoff(b Backoff) Option { return func(c *Client) { c.backoff = b } }

// WithMaxAttempts bounds submission attempts (default 10).
func WithMaxAttempts(n int) Option { return func(c *Client) { c.attempts = n } }

// WithMaxElapsed bounds the total wall-clock time one Submit call may
// spend across all attempts and backoff sleeps. Attempt counts alone do
// not bound time — a server sending large Retry-After hints can stretch
// ten attempts over minutes — so callers that hold a time-bounded
// resource (a fleet coordinator holding a cell lease, say) cap elapsed
// time too. Zero leaves only the attempt cap and the caller's context.
func WithMaxElapsed(d time.Duration) Option { return func(c *Client) { c.maxElapsed = d } }

// WithTenant stamps every request with the tenant name (the server's
// X-Rvp-Tenant header), so per-tenant quotas and rate limits attribute
// the client's traffic correctly. Empty means the server's default
// tenant.
func WithTenant(t string) Option { return func(c *Client) { c.tenant = t } }

// WithSeed makes the jitter deterministic (tests).
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithLogger logs every request, retry and backoff decision (with the
// submission's trace ID) through l.
func WithLogger(l *slog.Logger) Option { return func(c *Client) { c.log = l } }

// WithTracer collects client-side spans (one per submission, one per
// attempt) and propagates trace identity to the server via
// X-Rvp-Trace-Id/X-Rvp-Parent-Span, so client and daemon spans form
// one connected trace.
func WithTracer(t *obs.Tracer) Option { return func(c *Client) { c.tracer = t } }

// New builds a client for the server at base URL.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:     base,
		hc:       &http.Client{Timeout: 2 * time.Minute},
		backoff:  DefaultBackoff(),
		attempts: 10,
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) rand() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// RetryableError reports a submission that exhausted its attempts; it
// carries the last HTTP status observed (0 for transport errors).
type RetryableError struct {
	Attempts   int
	LastStatus int
	Last       error
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("submission not accepted after %d attempts (last status %d): %v",
		e.Attempts, e.LastStatus, e.Last)
}

func (e *RetryableError) Unwrap() error { return e.Last }

// NewIdempotencyKey returns a fresh random key.
func NewIdempotencyKey() string {
	return fmt.Sprintf("k%08x%08x", rand.Uint32(), rand.Uint32())
}

// Submit submits spec under the idempotency key (one is generated when
// empty), retrying with backoff until the server accepts, dedupes, or a
// non-retryable error occurs. 4xx responses other than 429 are
// permanent failures surfaced immediately.
func (c *Client) Submit(ctx context.Context, spec exp.JobSpec, key string) (server.JobStatus, error) {
	if key == "" {
		key = NewIdempotencyKey()
	}
	// The job's propagated deadline is the caller's own deadline,
	// captured before the retry budget below narrows the context: the
	// elapsed cap bounds this submission, not the job's execution, and
	// conflating the two would make the server kill every job slower
	// than one retry budget.
	var jobDeadline time.Time
	if d, ok := ctx.Deadline(); ok {
		jobDeadline = d
	}
	// The elapsed cap is a context deadline, not bookkeeping: it bounds
	// in-flight requests and backoff sleeps alike, so a submission can
	// never outlive its budget waiting on a slow transport or a server
	// whose Retry-After hints keep stretching the schedule.
	if c.maxElapsed > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxElapsed)
		defer cancel()
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return server.JobStatus{}, err
	}
	// The submit span roots the trace (all attempts, and — via header
	// propagation — everything the daemon does for this job, too).
	ssp := c.tracer.Start(obs.SpanContext{}, "submit")
	ssp.SetAttr("kind", spec.Kind)
	trace := ssp.Context().Trace
	var lastErr error
	lastStatus := 0
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, retryAfterHint(lastErr)); err != nil {
				ssp.EndErr(err)
				return server.JobStatus{}, err
			}
		}
		asp := c.tracer.Start(ssp.Context(), "submit_attempt")
		st, status, err := c.trySubmit(ctx, body, key, asp.Context(), jobDeadline)
		asp.SetAttr("status", strconv.Itoa(status))
		asp.EndErr(err)
		switch {
		case err == nil:
			c.log.Info("submitted", "job", st.ID, "state", st.State, "trace", trace,
				"attempt", attempt+1)
			ssp.SetAttr("job", st.ID)
			ssp.End()
			return st, nil
		case ctx.Err() != nil:
			ssp.EndErr(ctx.Err())
			return server.JobStatus{}, ctx.Err()
		case !retryable(status, err):
			c.log.Warn("submit rejected permanently", "status", status, "trace", trace, "error", err)
			ssp.EndErr(err)
			return server.JobStatus{}, err
		}
		c.log.Debug("submit attempt failed; backing off", "attempt", attempt+1,
			"status", status, "trace", trace, "error", err)
		lastErr, lastStatus = err, status
	}
	err = &RetryableError{Attempts: c.attempts, LastStatus: lastStatus, Last: lastErr}
	c.log.Warn("submission exhausted attempts", "trace", trace, "error", err)
	ssp.EndErr(err)
	return server.JobStatus{}, err
}

// httpError is a non-2xx response, keeping the server's Retry-After.
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.status, e.msg)
}

// StatusCode exposes the HTTP status (for callers and tests).
func (e *httpError) StatusCode() int { return e.status }

// retryAfterHint extracts the Retry-After a previous attempt carried.
func retryAfterHint(err error) time.Duration {
	var he *httpError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

// retryable classifies one failed attempt: shed responses (429),
// unavailability (503), server errors (5xx) and transport errors are
// retried; other 4xx are the caller's bug.
func retryable(status int, err error) bool {
	if status == 0 {
		return true // transport error
	}
	return status == http.StatusTooManyRequests || status >= 500
}

// sleep waits the jittered backoff for attempt, stretched to at least
// the server's Retry-After when one was given.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := c.backoff.delay(attempt, c.rand)
	if retryAfter > d {
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// newRequest builds one API request with the client's common headers:
// tenant identity and — when ctx carries a deadline — the propagated
// X-Rvp-Deadline, so the server can refuse or cancel work whose caller
// has already given up. POST bodies are buffered ([]byte) and GetBody
// is guaranteed non-nil, so any retry — ours or a transport-level
// redirect/replay — rewinds a fresh reader instead of resending a
// drained one.
func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		// http.NewRequest sets this for *bytes.Reader already; keep it
		// explicit so the replayable-body contract survives refactors.
		req.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(server.TenantHeader, c.tenant)
	}
	if d, ok := ctx.Deadline(); ok {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(d.UnixMicro(), 10))
	}
	return req, nil
}

func (c *Client) trySubmit(ctx context.Context, body []byte, key string, tctx obs.SpanContext, jobDeadline time.Time) (server.JobStatus, int, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return server.JobStatus{}, 0, err
	}
	// newRequest stamped the request context's deadline (the retry
	// budget); the job deadline the server enforces is the caller's.
	if jobDeadline.IsZero() {
		req.Header.Del(server.DeadlineHeader)
	} else {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(jobDeadline.UnixMicro(), 10))
	}
	req.Header.Set("Idempotency-Key", key)
	if tctx.Trace != "" {
		req.Header.Set(server.TraceIDHeader, tctx.Trace)
		req.Header.Set(server.ParentSpanHeader, tctx.Span)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return server.JobStatus{}, resp.StatusCode, fmt.Errorf("decoding response: %w", err)
		}
		return st, resp.StatusCode, nil
	}
	return server.JobStatus{}, resp.StatusCode, decodeError(resp)
}

// decodeError turns a non-2xx response into an *httpError.
func decodeError(resp *http.Response) error {
	he := &httpError{status: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		he.retryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		he.msg = body.Error
	} else {
		he.msg = string(bytes.TrimSpace(raw))
	}
	return he
}

// Status fetches one job's current state.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, decodeError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, fmt.Errorf("decoding status: %w", err)
	}
	return st, nil
}

// Wait polls the job until it reaches a terminal state. Transport
// errors and 5xx during polling are tolerated (the daemon may be
// restarting mid-drain); poll sets the cadence (default 200ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err == nil && st.Terminal() {
			return st, nil
		}
		if err != nil {
			var he *httpError
			if errors.As(err, &he) && he.status == http.StatusNotFound {
				// A restarted daemon replays its store before serving, so
				// a 404 here means the job truly never existed.
				return server.JobStatus{}, err
			}
		}
		select {
		case <-ctx.Done():
			return server.JobStatus{}, ctx.Err()
		case <-t.C:
		}
	}
}

// SubmitAndWait submits with retries, then waits for the terminal state.
func (c *Client) SubmitAndWait(ctx context.Context, spec exp.JobSpec, key string, poll time.Duration) (server.JobStatus, error) {
	st, err := c.Submit(ctx, spec, key)
	if err != nil {
		return st, err
	}
	if st.Terminal() {
		return st, nil
	}
	return c.Wait(ctx, st.ID, poll)
}

// RegisterWorker announces a worker's base URL to a fleet coordinator
// (the Client's base must point at the coordinator). Registration is
// idempotent on the coordinator side, so the call retries with the same
// backoff schedule as Submit until the coordinator accepts or a
// permanent 4xx says the URL itself is bad. Daemons use this to
// self-advertise on startup (rvpd -advertise) while the coordinator may
// still be coming up.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string) error {
	if c.maxElapsed > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxElapsed)
		defer cancel()
	}
	body, err := json.Marshal(map[string]string{"url": workerURL})
	if err != nil {
		return err
	}
	var lastErr error
	lastStatus := 0
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, retryAfterHint(lastErr)); err != nil {
				return err
			}
		}
		status, err := c.tryRegister(ctx, body)
		switch {
		case err == nil:
			c.log.Info("worker registered", "worker", workerURL, "coordinator", c.base,
				"attempt", attempt+1)
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case !retryable(status, err):
			c.log.Warn("worker registration rejected permanently", "status", status, "error", err)
			return err
		}
		c.log.Debug("worker registration failed; backing off", "attempt", attempt+1,
			"status", status, "error", err)
		lastErr, lastStatus = err, status
	}
	return &RetryableError{Attempts: c.attempts, LastStatus: lastStatus, Last: lastErr}
}

func (c *Client) tryRegister(ctx context.Context, body []byte) (int, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/workers", body)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return resp.StatusCode, nil
	}
	return resp.StatusCode, decodeError(resp)
}

// CheckEndpoint GETs one of the daemon's plumbing endpoints (/healthz,
// /readyz, /metrics) and returns its body, failing on non-200.
func (c *Client) CheckEndpoint(ctx context.Context, path string) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(raw), fmt.Errorf("%s returned %d", path, resp.StatusCode)
	}
	return string(raw), nil
}
