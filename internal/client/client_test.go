package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/server"
)

func fastBackoff() Backoff {
	return Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2}
}

var testSpec = exp.JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 5000}

// scriptedServer answers POST /v1/jobs from a list of canned responses,
// recording the Idempotency-Key of every attempt.
type scriptedServer struct {
	mu      sync.Mutex
	replies []func(w http.ResponseWriter)
	keys    []string
}

func (s *scriptedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.keys = append(s.keys, r.Header.Get("Idempotency-Key"))
		if len(s.replies) == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		reply := s.replies[0]
		s.replies = s.replies[1:]
		reply(w)
	})
	return mux
}

func reply(status int, retryAfter string, body any) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		if body != nil {
			json.NewEncoder(w).Encode(body)
		}
	}
}

func TestSubmitRetriesUntilAccepted(t *testing.T) {
	accepted := server.JobStatus{ID: "j1", State: server.StateQueued, Spec: testSpec}
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusTooManyRequests, "", map[string]string{"error": "queue full"}),
		reply(http.StatusServiceUnavailable, "", map[string]string{"error": "draining"}),
		reply(http.StatusInternalServerError, "", nil),
		reply(http.StatusAccepted, "", accepted),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1))
	st, err := c.Submit(context.Background(), testSpec, "fixed-key")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("accepted job = %+v", st)
	}
	if len(ss.keys) != 4 {
		t.Fatalf("attempts = %d, want 4", len(ss.keys))
	}
	for i, k := range ss.keys {
		if k != "fixed-key" {
			t.Fatalf("attempt %d sent key %q; every retry must reuse the idempotency key", i, k)
		}
	}
}

func TestSubmitGeneratesOneKey(t *testing.T) {
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusTooManyRequests, "", nil),
		reply(http.StatusAccepted, "", server.JobStatus{ID: "j1", State: server.StateQueued}),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()))
	if _, err := c.Submit(context.Background(), testSpec, ""); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(ss.keys) != 2 || ss.keys[0] == "" || ss.keys[0] != ss.keys[1] {
		t.Fatalf("generated key not constant across retries: %q", ss.keys)
	}
}

func TestSubmitHonorsRetryAfter(t *testing.T) {
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusTooManyRequests, "1", nil), // server asks for 1s
		reply(http.StatusAccepted, "", server.JobStatus{ID: "j1", State: server.StateQueued}),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	// Backoff alone would retry after ~1ms; Retry-After must stretch it.
	c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1))
	start := time.Now()
	if _, err := c.Submit(context.Background(), testSpec, "k"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= the server's 1s Retry-After", elapsed)
	}
}

func TestSubmitToleratesMalformedRetryAfter(t *testing.T) {
	// A garbage Retry-After must be ignored (fall back to the client's
	// own backoff), never parsed into a huge or negative sleep.
	for _, ra := range []string{"banana", "-5", "0", "  ", "1e9"} {
		ss := &scriptedServer{replies: []func(http.ResponseWriter){
			reply(http.StatusServiceUnavailable, ra, nil),
			reply(http.StatusAccepted, "", server.JobStatus{ID: "j1", State: server.StateQueued}),
		}}
		ts := httptest.NewServer(ss.handler())
		c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1))
		start := time.Now()
		_, err := c.Submit(context.Background(), testSpec, "k")
		elapsed := time.Since(start)
		ts.Close()
		if err != nil {
			t.Fatalf("Retry-After=%q: Submit: %v", ra, err)
		}
		if elapsed > 500*time.Millisecond {
			t.Errorf("Retry-After=%q stretched the backoff to %v; malformed hints must be ignored", ra, elapsed)
		}
		if len(ss.keys) != 2 {
			t.Errorf("Retry-After=%q: attempts = %d, want 2", ra, len(ss.keys))
		}
	}
}

func TestSubmitAbsentRetryAfterUsesBackoff(t *testing.T) {
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusServiceUnavailable, "", nil), // no Retry-After at all
		reply(http.StatusAccepted, "", server.JobStatus{ID: "j1", State: server.StateQueued}),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()
	c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1))
	start := time.Now()
	if _, err := c.Submit(context.Background(), testSpec, "k"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("absent Retry-After slept %v; the millisecond backoff should govern", elapsed)
	}
}

func TestSubmitMaxElapsedCapsTotalTime(t *testing.T) {
	// The server's Retry-After hints would stretch ten attempts far past
	// any attempt cap — 60s each here — so only the elapsed-time cap can
	// bound the call. It is a context deadline, so it cuts off backoff
	// sleeps mid-wait, not just between attempts.
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusServiceUnavailable, "60", nil),
		reply(http.StatusServiceUnavailable, "60", nil),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()
	c := New(ts.URL, WithBackoff(fastBackoff()), WithSeed(1),
		WithMaxElapsed(300*time.Millisecond))
	start := time.Now()
	_, err := c.Submit(context.Background(), testSpec, "k")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("Submit succeeded; want the elapsed cap to cut it off")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded from the elapsed cap", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("Submit ran %v under a 300ms elapsed cap", elapsed)
	}
}

func TestSubmitMaxElapsedLeavesCallerContextAlone(t *testing.T) {
	// The cap must bound one Submit call, not poison the caller's
	// context for later calls.
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusAccepted, "", server.JobStatus{ID: "j1", State: server.StateQueued}),
		reply(http.StatusAccepted, "", server.JobStatus{ID: "j2", State: server.StateQueued}),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()
	c := New(ts.URL, WithBackoff(fastBackoff()), WithMaxElapsed(time.Minute))
	ctx := context.Background()
	if _, err := c.Submit(ctx, testSpec, "k1"); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := c.Submit(ctx, testSpec, "k2"); err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if ctx.Err() != nil {
		t.Fatalf("caller context canceled by WithMaxElapsed: %v", ctx.Err())
	}
}

func TestSubmitFailsFastOnClientError(t *testing.T) {
	ss := &scriptedServer{replies: []func(http.ResponseWriter){
		reply(http.StatusBadRequest, "", map[string]string{"error": "bad spec"}),
	}}
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()))
	_, err := c.Submit(context.Background(), testSpec, "k")
	if err == nil {
		t.Fatalf("Submit on 400 = nil error")
	}
	var he *httpError
	if !errors.As(err, &he) || he.StatusCode() != http.StatusBadRequest {
		t.Fatalf("err = %v, want the 400 surfaced directly", err)
	}
	if len(ss.keys) != 1 {
		t.Fatalf("400 was retried: %d attempts", len(ss.keys))
	}
}

func TestSubmitExhaustsAttempts(t *testing.T) {
	ss := &scriptedServer{} // empty script: every attempt gets a 500
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	c := New(ts.URL, WithBackoff(fastBackoff()), WithMaxAttempts(3))
	_, err := c.Submit(context.Background(), testSpec, "k")
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryableError", err)
	}
	if re.Attempts != 3 || re.LastStatus != http.StatusInternalServerError {
		t.Fatalf("RetryableError = %+v", re)
	}
	if len(ss.keys) != 3 {
		t.Fatalf("attempts = %d, want 3", len(ss.keys))
	}
}

func TestSubmitContextCancel(t *testing.T) {
	ss := &scriptedServer{} // always 500 -> client would retry forever
	ts := httptest.NewServer(ss.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := New(ts.URL, WithBackoff(Backoff{Base: time.Hour, Max: time.Hour, Factor: 1}))
	_, err := c.Submit(ctx, testSpec, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
}

func TestBackoffShape(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	rng := func() float64 { return 0.5 }
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := b.delay(attempt, rng)
		// Equal jitter: delay lies in [full/2, full] of the capped schedule.
		full := float64(b.Base) * float64(int(1)<<attempt)
		if full > float64(b.Max) {
			full = float64(b.Max)
		}
		if float64(d) < full/2 || float64(d) > full {
			t.Fatalf("attempt %d: delay %v outside [%v/2, %v]", attempt, d, time.Duration(full), time.Duration(full))
		}
		if d < prev && float64(d) < float64(b.Max)/2 {
			t.Fatalf("attempt %d: delay %v shrank below previous %v before the cap", attempt, d, prev)
		}
		prev = d
	}
}

func TestWaitPollsToTerminal(t *testing.T) {
	var calls int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		st := server.JobStatus{ID: "j1", State: server.StateRunning}
		if n >= 3 {
			st.State = server.StateSucceeded
		}
		json.NewEncoder(w).Encode(st)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	st, err := c.Wait(context.Background(), "j1", time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != server.StateSucceeded {
		t.Fatalf("Wait returned state %s", st.State)
	}
}

func TestWaitFailsFastOnNotFound(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown job"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	_, err := c.Wait(context.Background(), "jmissing", time.Millisecond)
	var he *httpError
	if !errors.As(err, &he) || he.StatusCode() != http.StatusNotFound {
		t.Fatalf("Wait on 404 = %v, want immediate 404", err)
	}
}
