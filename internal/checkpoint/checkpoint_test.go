package checkpoint_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/core"
	"rvpsim/internal/isa"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/workloads"
)

// commitRec is the architectural slice of one committed instruction.
type commitRec struct {
	PC    uint64
	Wrote bool
	Rd    isa.Reg
	Value uint64
}

func recordStream(out *[]commitRec) pipeline.Tracer {
	return func(tr pipeline.TraceRecord) {
		*out = append(*out, commitRec{PC: tr.PC, Wrote: tr.WroteRd, Rd: tr.Rd, Value: tr.Value})
	}
}

// TestCheckpointDeterminism is the tentpole guarantee: snapshot a run at
// a (pseudo-random) commit index, serialize the snapshot through the
// on-disk container, restore it into a fresh simulator and predictor,
// and the resumed run must commit the identical instruction/value
// stream and end with identical final Stats as the uninterrupted run.
func TestCheckpointDeterminism(t *testing.T) {
	const budget = 100_000
	rng := rand.New(rand.NewSource(7))
	recoveries := []pipeline.Recovery{pipeline.RecoverRefetch, pipeline.RecoverReissue, pipeline.RecoverSelective}
	names := []string{"li", "go", "hydro2d"}

	for _, name := range names {
		for _, rec := range recoveries {
			t.Run(name+"/"+rec.String(), func(t *testing.T) {
				prog, err := workloads.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := pipeline.BaselineConfig()
				cfg.Recovery = rec

				// Uninterrupted reference run.
				var refStream []commitRec
				refSim := pipeline.MustNew(cfg)
				refSim.SetTracer(recordStream(&refStream))
				refStats, err := refSim.Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
				if err != nil {
					t.Fatal(err)
				}

				// Partial run up to a random split, then snapshot.
				split := uint64(1_000 + rng.Intn(budget-2_000))
				simA := pipeline.MustNew(cfg)
				if _, err := simA.Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), split); err != nil {
					t.Fatal(err)
				}
				snap, err := simA.Snapshot()
				if err != nil {
					t.Fatal(err)
				}

				// Round-trip the snapshot through the on-disk container.
				path := filepath.Join(t.TempDir(), "run.ckpt")
				if err := checkpoint.Save(path, snap); err != nil {
					t.Fatal(err)
				}
				loaded, err := checkpoint.Load(path)
				if err != nil {
					t.Fatal(err)
				}

				// Resume in a fresh simulator with a fresh predictor.
				var tail []commitRec
				simB, err := pipeline.RestoreSim(loaded)
				if err != nil {
					t.Fatal(err)
				}
				simB.SetTracer(recordStream(&tail))
				gotStats, err := simB.ResumeContext(t.Context(), loaded, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
				if err != nil {
					t.Fatal(err)
				}

				if gotStats != refStats {
					t.Errorf("resumed Stats differ from uninterrupted run (split %d):\n%v\nvs\n%v", split, gotStats, refStats)
				}
				want := refStream[split:]
				if len(tail) != len(want) {
					t.Fatalf("resumed run committed %d instructions after the split, want %d", len(tail), len(want))
				}
				for i := range want {
					if tail[i] != want[i] {
						t.Fatalf("committed stream diverges at post-split instruction %d (split %d): got %+v want %+v",
							i, split, tail[i], want[i])
					}
				}
			})
		}
	}
}

// TestCheckpointRoundTripLVP covers the buffer-kind predictor path: LVP
// state (values, tags, counters) must survive the round trip bit-exactly.
func TestCheckpointRoundTripLVP(t *testing.T) {
	const budget = 60_000
	prog, err := workloads.ByName("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()

	var refStream []commitRec
	refSim := pipeline.MustNew(cfg)
	refSim.SetTracer(recordStream(&refStream))
	refStats, err := refSim.Run(prog, core.MustLVP(core.DefaultLVPConfig(), "lvp"), budget)
	if err != nil {
		t.Fatal(err)
	}

	const split = 17_500
	simA := pipeline.MustNew(cfg)
	if _, err := simA.Run(prog, core.MustLVP(core.DefaultLVPConfig(), "lvp"), split); err != nil {
		t.Fatal(err)
	}
	snap, err := simA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	var tail []commitRec
	simB := pipeline.MustNew(cfg)
	simB.SetTracer(recordStream(&tail))
	gotStats, err := simB.ResumeContext(t.Context(), loaded, prog, core.MustLVP(core.DefaultLVPConfig(), "lvp"), budget)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != refStats {
		t.Errorf("resumed LVP Stats differ:\n%v\nvs\n%v", gotStats, refStats)
	}
	for i, want := range refStream[split:] {
		if tail[i] != want {
			t.Fatalf("LVP committed stream diverges at post-split instruction %d", i)
		}
	}
}

// TestPeriodicCheckpointDoesNotPerturb: arming SetCheckpoint must not
// change the committed stream or final Stats.
func TestPeriodicCheckpointDoesNotPerturb(t *testing.T) {
	const budget = 40_000
	prog, err := workloads.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()

	plain := pipeline.MustNew(cfg)
	wantStats, err := plain.Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := pipeline.MustNew(cfg)
	saves := 0
	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	ckpt.SetCheckpoint(5_000, func(snap *pipeline.Snapshot) error {
		saves++
		return checkpoint.Save(path, snap)
	})
	gotStats, err := ckpt.Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Errorf("periodic checkpointing perturbed the run:\n%v\nvs\n%v", gotStats, wantStats)
	}
	if saves == 0 {
		t.Fatal("checkpoint callback never fired")
	}
	// The last periodic checkpoint must itself resume to the same end state.
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	simB := pipeline.MustNew(cfg)
	resumed, err := simB.ResumeContext(t.Context(), loaded, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != wantStats {
		t.Errorf("resume from periodic checkpoint differs:\n%v\nvs\n%v", resumed, wantStats)
	}
}

func mustSnapshot(t *testing.T) *pipeline.Snapshot {
	t.Helper()
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	if _, err := sim.Run(prog, core.NoPredictor{}, 5_000); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestLoadCorruption: every flavor of file damage must surface as
// simerr.ErrCorrupt, never a panic or a silently wrong snapshot.
func TestLoadCorruption(t *testing.T) {
	snap := mustSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := checkpoint.Save(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name+".ckpt")
			if err := os.WriteFile(p, mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := checkpoint.Load(p); !errors.Is(err, simerr.ErrCorrupt) {
				t.Errorf("want ErrCorrupt, got %v", err)
			}
		})
	}
	check("truncated-header", func(b []byte) []byte { return b[:10] })
	check("truncated-payload", func(b []byte) []byte { return b[:len(b)/2] })
	check("bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	check("bad-version", func(b []byte) []byte { b[8] = 0x7F; return b })
	check("flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })

	t.Run("missing-file", func(t *testing.T) {
		if _, err := checkpoint.Load(filepath.Join(dir, "nope.ckpt")); !os.IsNotExist(err) {
			t.Errorf("want not-exist, got %v", err)
		}
	})
	t.Run("no-temp-residue", func(t *testing.T) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) != ".ckpt" {
				t.Errorf("unexpected residue file %s", e.Name())
			}
		}
	})
}

// TestResumeValidation: a snapshot restored against the wrong program,
// config, or predictor is rejected with ErrCorrupt — never misrestored.
func TestResumeValidation(t *testing.T) {
	snap := mustSnapshot(t)

	t.Run("wrong-program", func(t *testing.T) {
		other, err := workloads.ByName("go")
		if err != nil {
			t.Fatal(err)
		}
		sim := pipeline.MustNew(pipeline.BaselineConfig())
		if _, err := sim.ResumeContext(t.Context(), snap, other, core.NoPredictor{}, 10_000); !errors.Is(err, simerr.ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("wrong-config", func(t *testing.T) {
		prog, err := workloads.ByName("li")
		if err != nil {
			t.Fatal(err)
		}
		sim := pipeline.MustNew(pipeline.AggressiveConfig())
		if _, err := sim.ResumeContext(t.Context(), snap, prog, core.NoPredictor{}, 10_000); !errors.Is(err, simerr.ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("wrong-predictor", func(t *testing.T) {
		prog, err := workloads.ByName("li")
		if err != nil {
			t.Fatal(err)
		}
		sim := pipeline.MustNew(pipeline.BaselineConfig())
		if _, err := sim.ResumeContext(t.Context(), snap, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), 10_000); !errors.Is(err, simerr.ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
}
