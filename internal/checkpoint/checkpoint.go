// Package checkpoint implements the on-disk format for simulator
// snapshots: a versioned, checksummed container around a gob-encoded
// pipeline.Snapshot, written atomically (temp file + rename) so a crash
// mid-write can never leave a live checkpoint path pointing at a torn
// file. Loading validates magic, version, length, and a CRC-64 of the
// payload; any damage — truncation, bit rot, a different format — is
// reported as an error wrapping simerr.ErrCorrupt so callers can discard
// the file and recompute instead of dying.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"path/filepath"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
)

// magic identifies a checkpoint file. Version is separate so readers can
// distinguish "not a checkpoint at all" from "a checkpoint from another
// era of the format".
var magic = [8]byte{'R', 'V', 'P', 'C', 'K', 'P', 'T', '\n'}

// Version is the current checkpoint format version. Bump it whenever
// the Snapshot schema changes incompatibly; old files then fail loudly
// as corrupt/unsupported rather than misrestoring.
const Version uint32 = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

func init() {
	// The predictor state travels inside Snapshot as a core.PredictorState
	// interface value; gob needs every concrete type registered.
	for _, st := range core.AllPredictorStates() {
		gob.Register(st)
	}
}

// header is the fixed-size preamble: magic, version, payload length,
// payload CRC-64 (ECMA).
const headerSize = 8 + 4 + 8 + 8

// Encode serializes a snapshot into the container format.
func Encode(snap *pipeline.Snapshot) ([]byte, error) {
	if snap == nil {
		return nil, simerr.Newf("checkpoint", "nil snapshot")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, simerr.New("checkpoint", fmt.Errorf("encode: %w", err))
	}
	buf := make([]byte, headerSize, headerSize+payload.Len())
	copy(buf[:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint64(buf[20:28], crc64.Checksum(payload.Bytes(), crcTable))
	return append(buf, payload.Bytes()...), nil
}

// Decode parses a container produced by Encode. Damage of any kind is an
// error wrapping simerr.ErrCorrupt.
func Decode(data []byte) (*pipeline.Snapshot, error) {
	corrupt := func(format string, args ...any) error {
		return simerr.New("checkpoint", fmt.Errorf(format+": %w", append(args, simerr.ErrCorrupt)...))
	}
	if len(data) < headerSize {
		return nil, corrupt("truncated header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, corrupt("unsupported version %d (want %d)", v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	want := binary.LittleEndian.Uint64(data[20:28])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, corrupt("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, corrupt("payload checksum %#x, header says %#x", got, want)
	}
	var snap pipeline.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, corrupt("decode: %v", err)
	}
	return &snap, nil
}

// Verify checks the container's structure — magic, version, geometry,
// payload CRC — without gob-decoding the payload. It is what `rvpadmin
// fsck` runs over every checkpoint: cheap, and independent of the gob
// type registry. Damage wraps simerr.ErrCorrupt.
func Verify(data []byte) error {
	corrupt := func(format string, args ...any) error {
		return simerr.New("checkpoint", fmt.Errorf(format+": %w", append(args, simerr.ErrCorrupt)...))
	}
	if len(data) < headerSize {
		return corrupt("truncated header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return corrupt("unsupported version %d (want %d)", v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	want := binary.LittleEndian.Uint64(data[20:28])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return corrupt("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc64.Checksum(payload, crcTable); got != want {
		return corrupt("payload checksum %#x, header says %#x", got, want)
	}
	return nil
}

// Save writes a snapshot to path atomically via the OS filesystem.
func Save(path string, snap *pipeline.Snapshot) error {
	return SaveFS(vfs.OS, path, snap)
}

// SaveFS writes a snapshot to path atomically through fsys: the
// container is written and fsync'd to a temp file in the same
// directory, renamed over path, and the directory entry is fsync'd.
// Readers therefore always see either the previous checkpoint or the
// new one, never a torn mix — and the new one only once it would
// survive a crash. Every failure (including the directory fsync, whose
// loss would let a crash resurrect the old checkpoint after the save
// was acknowledged) fails the save, and no temp file is left behind on
// any error path, so retries don't litter the state dir.
func SaveFS(fsys vfs.FS, path string, snap *pipeline.Snapshot) error {
	data, err := Encode(snap)
	if err != nil {
		return err
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return simerr.New("checkpoint", err)
	}
	if err := vfs.WriteFileAtomic(fsys, path, data, 0o644); err != nil {
		return simerr.New("checkpoint", err)
	}
	return nil
}

// Load reads and validates the checkpoint at path via the OS
// filesystem.
func Load(path string) (*pipeline.Snapshot, error) {
	return LoadFS(vfs.OS, path)
}

// LoadFS reads and validates the checkpoint at path through fsys. A
// missing file is reported as the underlying fs error (check with
// errors.Is(err, fs.ErrNotExist)); a damaged file wraps
// simerr.ErrCorrupt.
func LoadFS(fsys vfs.FS, path string) (*pipeline.Snapshot, error) {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
