// Package checkpoint implements the on-disk format for simulator
// snapshots: a versioned, checksummed container around a gob-encoded
// pipeline.Snapshot, written atomically (temp file + rename) so a crash
// mid-write can never leave a live checkpoint path pointing at a torn
// file. Loading validates magic, version, length, and a CRC-64 of the
// payload; any damage — truncation, bit rot, a different format — is
// reported as an error wrapping simerr.ErrCorrupt so callers can discard
// the file and recompute instead of dying.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
)

// magic identifies a checkpoint file. Version is separate so readers can
// distinguish "not a checkpoint at all" from "a checkpoint from another
// era of the format".
var magic = [8]byte{'R', 'V', 'P', 'C', 'K', 'P', 'T', '\n'}

// Version is the current checkpoint format version. Bump it whenever
// the Snapshot schema changes incompatibly; old files then fail loudly
// as corrupt/unsupported rather than misrestoring.
const Version uint32 = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

func init() {
	// The predictor state travels inside Snapshot as a core.PredictorState
	// interface value; gob needs every concrete type registered.
	for _, st := range core.AllPredictorStates() {
		gob.Register(st)
	}
}

// header is the fixed-size preamble: magic, version, payload length,
// payload CRC-64 (ECMA).
const headerSize = 8 + 4 + 8 + 8

// Encode serializes a snapshot into the container format.
func Encode(snap *pipeline.Snapshot) ([]byte, error) {
	if snap == nil {
		return nil, simerr.Newf("checkpoint", "nil snapshot")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, simerr.New("checkpoint", fmt.Errorf("encode: %w", err))
	}
	buf := make([]byte, headerSize, headerSize+payload.Len())
	copy(buf[:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint64(buf[20:28], crc64.Checksum(payload.Bytes(), crcTable))
	return append(buf, payload.Bytes()...), nil
}

// Decode parses a container produced by Encode. Damage of any kind is an
// error wrapping simerr.ErrCorrupt.
func Decode(data []byte) (*pipeline.Snapshot, error) {
	corrupt := func(format string, args ...any) error {
		return simerr.New("checkpoint", fmt.Errorf(format+": %w", append(args, simerr.ErrCorrupt)...))
	}
	if len(data) < headerSize {
		return nil, corrupt("truncated header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, corrupt("unsupported version %d (want %d)", v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	want := binary.LittleEndian.Uint64(data[20:28])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, corrupt("payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, corrupt("payload checksum %#x, header says %#x", got, want)
	}
	var snap pipeline.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, corrupt("decode: %v", err)
	}
	return &snap, nil
}

// Save writes a snapshot to path atomically: the container is written
// and fsync'd to a temp file in the same directory, then renamed over
// path. Readers therefore always see either the previous checkpoint or
// the new one, never a torn mix.
func Save(path string, snap *pipeline.Snapshot) error {
	data, err := Encode(snap)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return simerr.New("checkpoint", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return simerr.New("checkpoint", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return simerr.New("checkpoint", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return simerr.New("checkpoint", err)
	}
	if err := tmp.Close(); err != nil {
		return simerr.New("checkpoint", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return simerr.New("checkpoint", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the checkpoint at path. A missing file is
// reported as the underlying fs error (check with os.IsNotExist /
// errors.Is(err, fs.ErrNotExist)); a damaged file wraps
// simerr.ErrCorrupt.
func Load(path string) (*pipeline.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, simerr.New("checkpoint", err)
	}
	return Decode(data)
}
