package checkpoint_test

import (
	"path/filepath"
	"testing"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/workloads"
)

// TestCheckpointDeterminismDensePredictors extends the checkpoint
// determinism guarantee over every dense-state predictor shape: the
// per-static-instruction state is held in flat slices (sized lazily or
// via SizeHint) and the simulator restore path must rebuild its derived
// hot-loop state — issue-queue ring cursors, the pending-prediction
// pool's reference counts — at arbitrary, odd split points. Any
// mismatch between a resumed run and the uninterrupted reference run
// fails on the first diverging committed instruction.
func TestCheckpointDeterminismDensePredictors(t *testing.T) {
	const budget = 60_000
	// Odd primes so the snapshot lands mid-ring for every queue size.
	splits := []uint64{4999, 31337}
	preds := map[string]func() core.Predictor{
		"drvp":       func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) },
		"drvp-loads": func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig(), core.LoadsOnly()) },
		"static": func() core.Predictor {
			return core.NewStaticRVP("s", map[int]bool{2: true, 7: true, 11: true, 23: true}, nil)
		},
		"lvp":    func() core.Predictor { return core.MustLVP(core.DefaultLVPConfig(), "lvp") },
		"gabbay": func() core.Predictor { return core.MustGabbayRVP(core.DefaultCounterConfig(), false) },
	}

	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	cfg.Recovery = pipeline.RecoverSelective

	for name, mk := range preds {
		for _, split := range splits {
			t.Run(name, func(t *testing.T) {
				var refStream []commitRec
				refSim := pipeline.MustNew(cfg)
				refSim.SetTracer(recordStream(&refStream))
				refStats, err := refSim.Run(prog, mk(), budget)
				if err != nil {
					t.Fatal(err)
				}

				simA := pipeline.MustNew(cfg)
				if _, err := simA.Run(prog, mk(), split); err != nil {
					t.Fatal(err)
				}
				snap, err := simA.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(t.TempDir(), "run.ckpt")
				if err := checkpoint.Save(path, snap); err != nil {
					t.Fatal(err)
				}
				loaded, err := checkpoint.Load(path)
				if err != nil {
					t.Fatal(err)
				}

				var tail []commitRec
				simB, err := pipeline.RestoreSim(loaded)
				if err != nil {
					t.Fatal(err)
				}
				simB.SetTracer(recordStream(&tail))
				gotStats, err := simB.ResumeContext(t.Context(), loaded, prog, mk(), budget)
				if err != nil {
					t.Fatal(err)
				}

				if gotStats != refStats {
					t.Errorf("%s split %d: resumed Stats differ:\n%v\nvs\n%v", name, split, gotStats, refStats)
				}
				want := refStream[split:]
				if len(tail) != len(want) {
					t.Fatalf("%s split %d: resumed run committed %d instructions, want %d", name, split, len(tail), len(want))
				}
				for i := range want {
					if tail[i] != want[i] {
						t.Fatalf("%s split %d: stream diverges at post-split instruction %d: got %+v want %+v",
							name, split, i, tail[i], want[i])
					}
				}
			})
		}
	}
}
