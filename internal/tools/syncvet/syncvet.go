// Package syncvet is an errcheck-style static check scoped to the
// durability and network layers: in the packages that own persistent
// state, a discarded Sync(), SyncDir() or Close() error is a
// correctness bug, not a style nit — a failed fsync means the bytes may
// not be on disk, and ignoring it converts "durable" into "probably
// durable". In the HTTP client and fleet packages the same bare form on
// a response body (resp.Body.Close()) silently leaks the pooled
// connection when it fails, which under network faults is exactly when
// it fails.
//
// The check flags a bare call statement like
//
//	f.Sync()
//	f.Close()
//
// whose error result vanishes. Two forms stay allowed, because both are
// visible, deliberate decisions a reviewer can see and challenge:
//
//	_ = f.Close()   // explicit discard (e.g. already on an error path)
//	defer f.Close() // deferred cleanup of a read path
package syncvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// methods whose discarded error the check reports.
var watched = map[string]bool{
	"Sync":    true,
	"SyncDir": true,
	"Close":   true,
}

// Check parses every non-test .go file under each dir (non-recursive
// per entry; list subpackages explicitly) and returns one "file:line:
// message" diagnostic per discarded call.
func Check(dirs ...string) ([]string, error) {
	var out []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			ast.Inspect(file, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !watched[sel.Sel.Name] {
					return true
				}
				pos := fset.Position(call.Pos())
				out = append(out, fmt.Sprintf("%s:%d: result of %s() is discarded; handle the error or write an explicit `_ =`",
					pos.Filename, pos.Line, sel.Sel.Name))
				return true
			})
		}
	}
	sort.Strings(out)
	return out, nil
}
