package syncvet

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDurabilityLayerDiscardsNoSyncErrors runs the check over every
// package that owns persistent state. One discarded Sync/SyncDir/Close
// error anywhere in them fails ci.
func TestDurabilityLayerDiscardsNoSyncErrors(t *testing.T) {
	root := "../../.." // internal/tools/syncvet -> repo root
	dirs := []string{
		"internal/wal",
		"internal/wal/waltest",
		"internal/vfs",
		"internal/checkpoint",
		"internal/server",
		"internal/exp",
		"internal/fleet",
		"internal/client",
		"internal/netfault",
		"cmd/rvpadmin",
	}
	for i, d := range dirs {
		dirs[i] = filepath.Join(root, d)
	}
	diags, err := Check(dirs...)
	if err != nil {
		t.Fatalf("syncvet: %v", err)
	}
	for _, d := range diags {
		t.Error(d)
	}
}

// TestCheckFlagsTheBadForms proves the check actually catches what it
// claims to (a vet that never fires is indistinguishable from no vet).
func TestCheckFlagsTheBadForms(t *testing.T) {
	dir := t.TempDir()
	src := `package p

type f struct{}

func (f) Sync() error    { return nil }
func (f) Close() error   { return nil }
func (f) SyncDir() error { return nil }
func (f) Other() error   { return nil }

func bad() {
	var x f
	x.Sync()
	x.Close()
	x.SyncDir()
}

func good() error {
	var x f
	defer x.Close()
	_ = x.Sync()
	x.Other()
	if err := x.Sync(); err != nil {
		return err
	}
	return x.Close()
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%v", len(diags), diags)
	}
}
