// Package progtest generates random, terminating-by-construction programs
// for fuzz and property tests: counted loops (decrement + bne only),
// forward conditional branches, ALU ops over volatile registers, and
// loads/stores confined to a scratch array. Every generated program halts
// and is memory-safe.
package progtest

import (
	"fmt"
	"strings"

	"rvpsim/internal/asm"
	"rvpsim/internal/program"
)

// Gen is a deterministic random program generator.
type Gen struct {
	s   uint64
	buf strings.Builder
	lbl int
}

// New creates a generator for the seed.
func New(seed uint64) *Gen {
	if seed == 0 {
		seed = 1
	}
	return &Gen{s: seed * 0x9e3779b97f4a7c15}
}

func (g *Gen) rnd(n int) int {
	g.s ^= g.s >> 12
	g.s ^= g.s << 25
	g.s ^= g.s >> 27
	return int((g.s * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
}

// volatile pool used by generated bodies; r9/r10 reserved for loop
// counters, r2 for the array base.
var genRegs = []string{"r1", "r3", "r4", "r5", "r6", "r7", "r8", "r22", "r23", "r24", "r25", "r27"}

func (g *Gen) reg() string { return genRegs[g.rnd(len(genRegs))] }

func (g *Gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.buf, "        "+format+"\n", args...)
}

// body emits n random instructions, possibly with forward branches.
func (g *Gen) body(n int) {
	for i := 0; i < n; i++ {
		switch g.rnd(10) {
		case 0, 1:
			g.emit("ldq %s, %d(r2)", g.reg(), g.rnd(16)*8)
		case 2:
			g.emit("stq %s, %d(r2)", g.reg(), g.rnd(16)*8)
		case 3:
			g.emit("li %s, %d", g.reg(), g.rnd(1000))
		case 4:
			g.emit("addi %s, %s, %d", g.reg(), g.reg(), g.rnd(100))
		case 5:
			l := fmt.Sprintf("f%d", g.lbl)
			g.lbl++
			g.emit("cmplti r8, %s, %d", g.reg(), g.rnd(500))
			g.emit("beq r8, %s", l)
			g.emit("add %s, %s, %s", g.reg(), g.reg(), g.reg())
			g.buf.WriteString(l + ":\n")
		case 6:
			g.emit("mul %s, %s, %s", g.reg(), g.reg(), g.reg())
		case 7:
			g.emit("xor %s, %s, %s", g.reg(), g.reg(), g.reg())
		case 8:
			g.emit("srli %s, %s, %d", g.reg(), g.reg(), 1+g.rnd(8))
		default:
			g.emit("sub %s, %s, %s", g.reg(), g.reg(), g.reg())
		}
	}
}

// Source generates the assembly text of one random program.
func (g *Gen) Source() string {
	g.buf.Reset()
	g.buf.WriteString(".text\n.proc main\nmain:\n")
	g.emit("li r9, %d", 20+g.rnd(60))
	g.emit("lda r2, arr")
	g.buf.WriteString("outer:\n")
	g.body(3 + g.rnd(6))
	if g.rnd(2) == 0 {
		g.emit("li r10, %d", 2+g.rnd(8))
		g.buf.WriteString("inner:\n")
		g.body(2 + g.rnd(6))
		g.emit("subi r10, r10, 1")
		g.emit("bne r10, inner")
	}
	g.body(2 + g.rnd(4))
	g.emit("subi r9, r9, 1")
	g.emit("bne r9, outer")
	g.emit("mov r0, r4")
	g.emit("halt")
	g.buf.WriteString(".endproc\n.data\n.org 0x100000\narr: .space 16\n")
	return g.buf.String()
}

// Program generates and assembles one random program.
func (g *Gen) Program(name string) (*program.Program, error) {
	return asm.Assemble(name, g.Source(), asm.Options{})
}

// Random is a convenience: generate the program for a seed, panicking on
// generator bugs (tests treat that as a failure of the generator itself).
func Random(seed uint64) *program.Program {
	p, err := New(seed).Program(fmt.Sprintf("rand%d", seed))
	if err != nil {
		panic(err)
	}
	return p
}
