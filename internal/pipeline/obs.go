package pipeline

import "rvpsim/internal/obs"

// flushEvery is the hot-loop metrics batching interval, in committed
// instructions. It must be a power of two: the flush test is a mask.
const flushEvery = 8192

// meters bundles the pipeline's registry-backed instruments together
// with single-writer local views for the simulation loop. The loop
// accumulates into the per-run Stats struct and plain histogram buckets
// as before — zero allocations, zero atomics — and every flushEvery
// committed instructions the deltas are folded into the shared registry,
// so concurrent readers (heartbeats, exporters) see near-live values.
// One meters is built per Run; the registry persists across runs, so its
// counters are monotone run-over-run aggregates.
type meters struct {
	reg  *obs.Registry
	prev Stats // values already flushed into the registry

	cycles      *obs.Counter
	committed   *obs.Counter
	loads       *obs.Counter
	stores      *obs.Counter
	branches    *obs.Counter
	condBr      *obs.Counter
	condMiss    *obs.Counter
	targetMiss  *obs.Counter
	eligible    *obs.Counter
	predicted   *obs.Counter
	correct     *obs.Counter
	wrong       *obs.Counter
	portStarved *obs.Counter
	refetches   *obs.Counter
	stallWindow *obs.Counter
	stallIntIQ  *obs.Counter
	stallFPIQ   *obs.Counter

	instLatency *obs.LocalHistogram // fetch -> commit
	issueWait   *obs.LocalHistogram // dispatch -> issue (queue wait)
	residency   *obs.LocalHistogram // dispatch -> commit (window occupancy span)
}

// latencyBounds covers 1..~16K cycles exponentially: L1-hit ALU chains
// land in the first buckets, L2/TLB-miss tails in the last.
var latencyBounds = obs.ExpBuckets(2, 2, 14)

func newMeters(reg *obs.Registry) *meters {
	return &meters{
		reg:         reg,
		cycles:      reg.Counter("rvpsim_cycles_total", "simulated cycles"),
		committed:   reg.Counter("rvpsim_committed_total", "committed instructions"),
		loads:       reg.Counter("rvpsim_loads_total", "committed loads"),
		stores:      reg.Counter("rvpsim_stores_total", "committed stores"),
		branches:    reg.Counter("rvpsim_branches_total", "committed control transfers"),
		condBr:      reg.Counter("rvpsim_cond_branches_total", "conditional branches seen"),
		condMiss:    reg.Counter("rvpsim_cond_mispredict_total", "conditional direction mispredicts"),
		targetMiss:  reg.Counter("rvpsim_target_mispredict_total", "target mispredicts (BTB + RAS)"),
		eligible:    reg.Counter("rvpsim_vp_eligible_total", "register-writing instructions seen by the value predictor"),
		predicted:   reg.Counter("rvpsim_vp_predicted_total", "value predictions made"),
		correct:     reg.Counter("rvpsim_vp_correct_total", "correct value predictions"),
		wrong:       reg.Counter("rvpsim_vp_wrong_total", "wrong value predictions"),
		portStarved: reg.Counter("rvpsim_vp_port_starved_total", "predictions dropped for lack of a register read port"),
		refetches:   reg.Counter("rvpsim_vp_refetches_total", "value-mispredict refetch squashes"),
		stallWindow: reg.Counter("rvpsim_stall_window_cycles_total", "dispatch cycles lost to a full instruction window"),
		stallIntIQ:  reg.Counter("rvpsim_stall_intiq_cycles_total", "dispatch cycles lost to a full integer issue queue"),
		stallFPIQ:   reg.Counter("rvpsim_stall_fpiq_cycles_total", "dispatch cycles lost to a full FP issue queue"),
		instLatency: reg.Histogram("rvpsim_inst_latency_cycles", "per-instruction fetch-to-commit latency", latencyBounds).Local(),
		issueWait:   reg.Histogram("rvpsim_issue_wait_cycles", "per-instruction dispatch-to-issue queue wait", latencyBounds).Local(),
		residency:   reg.Histogram("rvpsim_window_residency_cycles", "per-instruction dispatch-to-commit window residency", latencyBounds).Local(),
	}
}

// observe records one committed instruction's stage timings locally.
func (m *meters) observe(instLat, issueWait, residency int64) {
	m.instLatency.Observe(instLat)
	m.issueWait.Observe(issueWait)
	m.residency.Observe(residency)
}

// flush folds the delta between cur and the last flushed Stats into the
// registry counters, plus any pending histogram observations.
func (m *meters) flush(cur *Stats) {
	m.cycles.Add(cur.Cycles - m.prev.Cycles)
	m.committed.Add(int64(cur.Committed - m.prev.Committed))
	m.loads.Add(int64(cur.Loads - m.prev.Loads))
	m.stores.Add(int64(cur.Stores - m.prev.Stores))
	m.branches.Add(int64(cur.Branches - m.prev.Branches))
	m.condBr.Add(int64(cur.CondBranches - m.prev.CondBranches))
	m.condMiss.Add(int64(cur.CondMispredict - m.prev.CondMispredict))
	m.targetMiss.Add(int64(cur.TargetMispred - m.prev.TargetMispred))
	m.eligible.Add(int64(cur.Eligible - m.prev.Eligible))
	m.predicted.Add(int64(cur.Predicted - m.prev.Predicted))
	m.correct.Add(int64(cur.PredictCorrect - m.prev.PredictCorrect))
	m.wrong.Add(int64(cur.PredictWrong - m.prev.PredictWrong))
	m.portStarved.Add(int64(cur.PortStarved - m.prev.PortStarved))
	m.refetches.Add(int64(cur.Refetches - m.prev.Refetches))
	m.stallWindow.Add(cur.StallWindow - m.prev.StallWindow)
	m.stallIntIQ.Add(cur.StallIntIQ - m.prev.StallIntIQ)
	m.stallFPIQ.Add(cur.StallFPIQ - m.prev.StallFPIQ)
	m.prev = *cur
	m.instLatency.Flush()
	m.issueWait.Flush()
	m.residency.Flush()
}
