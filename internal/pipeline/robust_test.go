package pipeline_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
)

// spinProg loops forever: the emulator never halts, so only the context
// (or a watchdog) can end the run.
const spinProg = `
.text
main:
        li      r1, 1
loop:
        addi    r2, r2, 1
        bne     r1, loop
        halt
`

// TestRunContextCanceled cancels a run of a non-terminating program and
// checks it stops at a commit-batch boundary with context.Canceled,
// structured coordinates, and coherent partial stats.
func TestRunContextCanceled(t *testing.T) {
	p := assemble(t, spinProg)
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	st, err := sim.RunContext(ctx, p, core.NoPredictor{}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var se *simerr.SimError
	if !errors.As(err, &se) || se.Stage != "pipeline" {
		t.Fatalf("cancellation not reported as a pipeline SimError: %v", err)
	}
	if st.Committed == 0 || st.Committed%1024 != 0 {
		t.Errorf("run did not stop at a commit-batch boundary: committed %d", st.Committed)
	}
	if st.Cycles <= 0 {
		t.Errorf("partial stats incoherent: %d cycles for %d committed", st.Cycles, st.Committed)
	}
}

// TestRunContextPreCanceled checks an already-canceled context stops the
// run before any instruction commits.
func TestRunContextPreCanceled(t *testing.T) {
	p := assemble(t, spinProg)
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := sim.RunContext(ctx, p, core.NoPredictor{}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st.Committed != 0 {
		t.Errorf("pre-canceled run committed %d instructions", st.Committed)
	}
}

// TestRunContextDeadline checks deadline expiry surfaces as
// context.DeadlineExceeded through the same path.
func TestRunContextDeadline(t *testing.T) {
	p := assemble(t, spinProg)
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := sim.RunContext(ctx, p, core.NoPredictor{}, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestWatchdogColdMiss arms a watchdog tighter than the memory system's
// cold-miss latency: the first load stalls commit past the bound and the
// run aborts with ErrNoProgress — no fault injection involved.
func TestWatchdogColdMiss(t *testing.T) {
	p := assemble(t, loopProg)
	cfg := pipeline.BaselineConfig()
	cfg.WatchdogCycles = 5 // far below the L1+L2 cold-miss latency
	sim := pipeline.MustNew(cfg)
	_, err := sim.Run(p, core.NoPredictor{}, 0)
	if !errors.Is(err, simerr.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
	var se *simerr.SimError
	if !errors.As(err, &se) || se.Stage != "pipeline" || !se.HasCycle || !se.HasPC {
		t.Fatalf("watchdog error lacks coordinates: %v", err)
	}
}

// TestWatchdogDisabledByDefault checks the zero value leaves the
// watchdog off: the same loop finishes cleanly.
func TestWatchdogDisabledByDefault(t *testing.T) {
	p := assemble(t, loopProg)
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	if _, err := sim.Run(p, core.NoPredictor{}, 0); err != nil {
		t.Fatalf("unfaulted run failed: %v", err)
	}
}

// TestConfigErrors checks pipeline.New rejects invalid machine and
// memory configurations with errors wrapping ErrConfig.
func TestConfigErrors(t *testing.T) {
	bad := []func(*pipeline.Config){
		func(c *pipeline.Config) { c.FetchWidth = 0 },
		func(c *pipeline.Config) { c.Window = -1 },
		func(c *pipeline.Config) { c.WatchdogCycles = -1 },
		func(c *pipeline.Config) { c.Mem.L1D.Assoc = 0 },
	}
	for i, mutate := range bad {
		cfg := pipeline.BaselineConfig()
		mutate(&cfg)
		if _, err := pipeline.New(cfg); !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("case %d: want ErrConfig, got %v", i, err)
		}
	}
}
