package pipeline

import (
	"context"
	"fmt"

	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// WarmState is a functionally-warmed architectural starting point for
// timed runs: the register file, memory image, PC, and commit count
// after fast-forwarding a program through some instructions on the
// reference emulator alone. No timing model, caches, or predictors are
// involved, so the state is predictor- and machine-configuration-
// independent — internal/exp computes one WarmState per workload and
// forks it into every (predictor, config) cell of a sweep.
//
// A WarmState is immutable after Warmup returns and safe to Fork from
// any number of goroutines concurrently.
type WarmState struct {
	Prog     string // program name, for identity validation
	NumInsts int    // static instruction count, ditto
	Insts    uint64 // instructions executed during warmup
	Arch     emu.Snapshot
}

// Warmup fast-forwards prog through at most insts committed instructions
// on the architectural emulator and captures the resulting state. The
// committed instruction/value stream is architecturally determined, so a
// timed run started from this state commits the byte-identical stream as
// one that performed the same fast-forward privately (proved by
// TestWarmupForkEquivalence). insts == 0 captures the program's initial
// state; a program that halts before the budget yields a halted state
// (the measured phase then commits nothing, exactly like a cold run of a
// workload shorter than its warmup).
func Warmup(prog *program.Program, insts uint64) (*WarmState, error) {
	st, err := emu.New(prog)
	if err != nil {
		return nil, simerr.New("warmup", err)
	}
	if insts > 0 {
		st.Run(insts)
		if st.Err() != nil {
			return nil, simerr.New("warmup", fmt.Errorf("oracle: %w", st.Err()))
		}
	}
	return &WarmState{
		Prog:     prog.Name,
		NumInsts: len(prog.Insts),
		Insts:    st.Count,
		Arch:     st.Snapshot(),
	}, nil
}

// Fork builds an independent architectural state at the warmup boundary
// using copy-on-write memory: the warmed image's pages are shared until
// the forked run first writes them (see emu.Fork), so N cells pay one
// warmup and one image instead of N. The WarmState itself is never
// mutated; forks may be taken concurrently.
func (w *WarmState) Fork(prog *program.Program) (*emu.State, error) {
	if prog == nil || prog.Name != w.Prog || len(prog.Insts) != w.NumInsts {
		name, n := "<nil>", 0
		if prog != nil {
			name, n = prog.Name, len(prog.Insts)
		}
		return nil, simerr.New("warmup", fmt.Errorf(
			"warm state is for program %q (%d insts), not %q (%d insts): %w",
			w.Prog, w.NumInsts, name, n, simerr.ErrCorrupt))
	}
	st, err := emu.Fork(prog, w.Arch)
	if err != nil {
		return nil, simerr.New("warmup", err)
	}
	return st, nil
}

// RunWarmedContext is RunContext starting from a warmed architectural
// state: the emulator begins at warm's boundary (registers and memory
// via a copy-on-write fork) while every microarchitectural structure —
// caches, TLBs, branch predictor, value predictor, timing state — starts
// cold, exactly as a cold run's structures look at its first
// instruction. maxInsts bounds the measured phase: committed
// instructions after the warmup boundary (Stats.Committed starts at 0
// here, as in RunContext). The warmed run remains checkpointable and
// observable like any other. A nil warm degenerates to RunContext.
func (s *Sim) RunWarmedContext(ctx context.Context, warm *WarmState, prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	if warm == nil {
		return s.RunContext(ctx, prog, pred, maxInsts)
	}
	st, err := warm.Fork(prog)
	if err != nil {
		return Stats{}, err
	}
	if err := s.startRun(pred); err != nil {
		return Stats{}, err
	}
	r := s.newRunState(prog, pred, st)
	s.cur = r
	return s.loop(ctx, r, maxInsts)
}
