package pipeline

import (
	"fmt"

	"rvpsim/internal/bpred"
	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/mem"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// Snapshot is the complete, serializable state of a run at an
// instruction boundary: architectural state (registers + memory image),
// every microarchitectural table (caches, TLBs, branch predictor, value
// predictor), the accumulated Stats, and the timing model's internal
// position. Resuming from a Snapshot commits the identical
// instruction/value stream — and produces identical final Stats — as
// the uninterrupted run it was taken from.
//
// All fields are exported plain data so the struct round-trips through
// encoding/gob (see internal/checkpoint for the on-disk format).
type Snapshot struct {
	Program  string // program name, for identity validation
	NumInsts int    // static instruction count, ditto
	Config   Config // the machine that produced this snapshot

	Stats Stats

	Emu   emu.Snapshot
	Mem   mem.HierarchyState
	Bpred bpred.State

	PredictorName string
	Predictor     core.PredictorState // nil if the predictor is not Checkpointable

	Timing TimingState
}

// TimingState is the timing model's internal position: per-register and
// per-static-instruction ready cycles, queue occupancy rings, bandwidth
// books, front-end state, and in-flight prediction bookkeeping.
type TimingState struct {
	RegReady  [isa.NumRegs]int64
	SpecUntil [isa.NumRegs]int64

	// In-flight predictions. regPending entries and the reissue-scheme
	// active list share *pendingPred pointers, so they serialize as
	// indices into Pendings (-1 = none) and aliasing survives the
	// round trip.
	Pendings    []PendingPredState
	RegPending  [isa.NumRegs]int32
	ActivePreds []int32

	LVReady []int64
	LVLast  []uint64

	IntIQ  []int64
	FPIQ   []int64
	Window []int64
	IntN   uint64
	FPN    uint64
	WinN   uint64

	DispatchCap []RingSlot
	IssueCap    []RingSlot
	IntCap      []RingSlot
	LSCap       []RingSlot
	FPCap       []RingSlot
	CommitCap   []RingSlot
	PortCap     []RingSlot

	FetchCycle  int64
	MinFetch    int64
	FetchSlots  int
	FetchBlocks int
	CurLine     uint64

	LastDispatch int64
	LastCommit   int64
	LastCycle    int64
}

// PendingPredState serializes one pendingPred.
type PendingPredState struct {
	VerifyAt int64
	DoneAt   int64
	Wrong    bool
	UseSeen  bool
}

// RingSlot is one live capRing entry. Rings are serialized sparsely:
// only slots whose stamp is at or after the snapshot's booking floor
// matter (see capRing.snapshot), so a snapshot carries a few hundred
// entries rather than 64K per ring.
type RingSlot struct {
	Slot  int32
	Stamp int64
	Count int32
}

// snapshot captures the ring's live entries. floor is the earliest cycle
// any future booking or query can touch (the minimum of the last
// in-order dispatch and last in-order commit): entries stamped before it
// are either dead or indistinguishable from an unbooked slot at every
// reachable cycle, so dropping them is exact, not approximate.
func (c *capRing) snapshot(floor int64) []RingSlot {
	var out []RingSlot
	for i, e := range c.ent {
		st, cnt := int64(e>>capCountBits), int32(e&capCountMask)
		if cnt != 0 && st >= floor {
			out = append(out, RingSlot{Slot: int32(i), Stamp: st, Count: cnt})
		}
	}
	return out
}

// restore loads sparse entries into a freshly zeroed ring.
func (c *capRing) restore(slots []RingSlot) error {
	for _, s := range slots {
		if s.Slot < 0 || int(s.Slot) >= capRingSize {
			return fmt.Errorf("pipeline: ring slot %d out of range: %w", s.Slot, simerr.ErrCorrupt)
		}
		if s.Stamp < 0 || s.Count < 0 || s.Count > capCountMask {
			return fmt.Errorf("pipeline: ring slot %d stamp/count out of range: %w", s.Slot, simerr.ErrCorrupt)
		}
		c.ent[s.Slot] = uint64(s.Stamp)<<capCountBits | uint64(s.Count)
	}
	return nil
}

// Snapshot captures the current run's complete state. It is valid while
// a run is at an instruction boundary: during a SetCheckpoint callback,
// or after RunContext/ResumeContext returned at an instruction boundary
// (normal completion, maxInsts bound, context cancellation, fault-
// injector checkpoint error). A watchdog or oracle abort leaves the
// simulator mid-instruction and is rejected.
func (s *Sim) Snapshot() (*Snapshot, error) {
	r := s.cur
	if r == nil {
		return nil, simerr.Newf("checkpoint", "no run to snapshot (nothing has run)")
	}
	if !r.coherent {
		return nil, simerr.Newf("checkpoint", "run stopped mid-instruction; state is not snapshot-coherent")
	}
	return s.buildSnapshot(r)
}

// buildSnapshot serializes r. The caller guarantees r is coherent.
func (s *Sim) buildSnapshot(r *runState) (*Snapshot, error) {
	snap := &Snapshot{
		Program:       r.prog.Name,
		NumInsts:      len(r.prog.Insts),
		Config:        s.cfg,
		Stats:         r.stats,
		Emu:           r.st.Snapshot(),
		Mem:           s.hier.Snapshot(),
		Bpred:         s.bp.Snapshot(),
		PredictorName: r.pred.Name(),
	}
	if cp, ok := r.pred.(core.Checkpointable); ok {
		snap.Predictor = cp.SnapshotState()
	}

	t := &snap.Timing
	t.RegReady = r.regReady
	t.SpecUntil = r.specUntil
	t.LVReady = append([]int64(nil), r.lvReady...)
	t.LVLast = append([]uint64(nil), r.lvLast...)
	t.IntIQ = append([]int64(nil), r.intIQ...)
	t.FPIQ = append([]int64(nil), r.fpIQ...)
	t.Window = append([]int64(nil), r.window...)
	t.IntN, t.FPN, t.WinN = r.intN, r.fpN, r.winN

	floor := r.lastDispatch
	if r.lastCommit < floor {
		floor = r.lastCommit
	}
	t.DispatchCap = r.dispatchCap.snapshot(floor)
	t.IssueCap = r.issueCap.snapshot(floor)
	t.IntCap = r.intCap.snapshot(floor)
	t.LSCap = r.lsCap.snapshot(floor)
	t.FPCap = r.fpCap.snapshot(floor)
	t.CommitCap = r.commitCap.snapshot(floor)
	if r.portCap != nil {
		t.PortCap = r.portCap.snapshot(floor)
	}

	t.FetchCycle, t.MinFetch = r.fetchCycle, r.minFetch
	t.FetchSlots, t.FetchBlocks = r.fetchSlots, r.fetchBlocks
	t.CurLine = r.curLine
	t.LastDispatch, t.LastCommit, t.LastCycle = r.lastDispatch, r.lastCommit, r.lastCycle

	// Dedup shared pendingPred pointers into an index space.
	index := make(map[*pendingPred]int32)
	add := func(p *pendingPred) int32 {
		if p == nil {
			return -1
		}
		if i, ok := index[p]; ok {
			return i
		}
		i := int32(len(t.Pendings))
		index[p] = i
		t.Pendings = append(t.Pendings, PendingPredState{
			VerifyAt: p.verifyAt, DoneAt: p.doneAt, Wrong: p.wrong, UseSeen: p.useSeen,
		})
		return i
	}
	for i, p := range r.regPending {
		t.RegPending[i] = add(p)
	}
	for _, p := range r.activePreds {
		t.ActivePreds = append(t.ActivePreds, add(p))
	}
	return snap, nil
}

// validateFor checks that a snapshot belongs to (cfg, prog, pred) before
// a resume. Identity mismatches wrap simerr.ErrCorrupt: the snapshot may
// be internally intact, but restoring it here would silently compute
// garbage, which is the same failure class for the caller.
func (snap *Snapshot) validateFor(cfg Config, prog *program.Program, pred core.Predictor) error {
	if prog == nil {
		return simerr.Newf("checkpoint", "nil program")
	}
	if snap.Program != prog.Name || snap.NumInsts != len(prog.Insts) {
		return simerr.New("checkpoint", fmt.Errorf(
			"snapshot is for program %q (%d insts), not %q (%d insts): %w",
			snap.Program, snap.NumInsts, prog.Name, len(prog.Insts), simerr.ErrCorrupt))
	}
	if snap.Config != cfg {
		return simerr.New("checkpoint", fmt.Errorf(
			"snapshot machine configuration does not match the simulator: %w", simerr.ErrCorrupt))
	}
	if snap.PredictorName != pred.Name() {
		return simerr.New("checkpoint", fmt.Errorf(
			"snapshot is for predictor %q, not %q: %w", snap.PredictorName, pred.Name(), simerr.ErrCorrupt))
	}
	if _, ok := pred.(core.Checkpointable); !ok {
		return simerr.Newf("checkpoint", "predictor %q does not support checkpoint restore", pred.Name())
	}
	if snap.Predictor == nil {
		return simerr.New("checkpoint", fmt.Errorf(
			"snapshot carries no predictor state: %w", simerr.ErrCorrupt))
	}
	return nil
}

// restoreRunState rebuilds the timing state from a validated snapshot.
func (s *Sim) restoreRunState(snap *Snapshot, prog *program.Program, pred core.Predictor, st *emu.State) (*runState, error) {
	cfg := s.cfg
	t := &snap.Timing
	r := s.newRunState(prog, pred, st)
	// Not snapshot-coherent until the restore completes: newRunState may
	// have recycled the previous run's state in place, so a failed
	// restore must not leave a half-written state that Snapshot would
	// happily serialize.
	r.coherent = false

	bad := func(what string) (*runState, error) {
		return nil, simerr.New("checkpoint", fmt.Errorf("snapshot %s does not match the configuration: %w", what, simerr.ErrCorrupt))
	}
	if len(t.LVReady) != len(prog.Insts) || len(t.LVLast) != len(prog.Insts) {
		return bad("per-instruction state size")
	}
	if len(t.IntIQ) != cfg.IntIQ || len(t.FPIQ) != cfg.FPIQ || len(t.Window) != cfg.Window {
		return bad("queue geometry")
	}
	if len(t.PortCap) > 0 && r.portCap == nil {
		return bad("predict-port booking")
	}

	r.stats = snap.Stats
	r.regReady = t.RegReady
	r.specUntil = t.SpecUntil
	copy(r.lvReady, t.LVReady)
	copy(r.lvLast, t.LVLast)
	copy(r.intIQ, t.IntIQ)
	copy(r.fpIQ, t.FPIQ)
	copy(r.window, t.Window)
	r.intN, r.fpN, r.winN = t.IntN, t.FPN, t.WinN
	r.intIdx = int(t.IntN % uint64(cfg.IntIQ))
	r.fpIdx = int(t.FPN % uint64(cfg.FPIQ))
	r.winIdx = int(t.WinN % uint64(cfg.Window))

	rings := []struct {
		ring  *capRing
		slots []RingSlot
	}{
		{r.dispatchCap, t.DispatchCap},
		{r.issueCap, t.IssueCap},
		{r.intCap, t.IntCap},
		{r.lsCap, t.LSCap},
		{r.fpCap, t.FPCap},
		{r.commitCap, t.CommitCap},
	}
	if r.portCap != nil {
		rings = append(rings, struct {
			ring  *capRing
			slots []RingSlot
		}{r.portCap, t.PortCap})
	}
	for _, rr := range rings {
		if err := rr.ring.restore(rr.slots); err != nil {
			return nil, err
		}
	}

	r.fetchCycle, r.minFetch = t.FetchCycle, t.MinFetch
	r.fetchSlots, r.fetchBlocks = t.FetchSlots, t.FetchBlocks
	r.curLine = t.CurLine
	r.lastDispatch, r.lastCommit, r.lastCycle = t.LastDispatch, t.LastCommit, t.LastCycle

	// Rebuild the shared pendingPred pointer graph from indices.
	pendings := make([]*pendingPred, len(t.Pendings))
	for i, p := range t.Pendings {
		pendings[i] = &pendingPred{verifyAt: p.VerifyAt, doneAt: p.DoneAt, wrong: p.Wrong, useSeen: p.UseSeen}
	}
	lookup := func(i int32) (*pendingPred, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || int(i) >= len(pendings) {
			return nil, simerr.New("checkpoint", fmt.Errorf("pending-prediction index %d out of range: %w", i, simerr.ErrCorrupt))
		}
		return pendings[i], nil
	}
	for i, pi := range t.RegPending {
		p, err := lookup(pi)
		if err != nil {
			return nil, err
		}
		r.regPending[i] = p
		if p != nil {
			r.retain(p)
		}
	}
	for _, pi := range t.ActivePreds {
		p, err := lookup(pi)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, simerr.New("checkpoint", fmt.Errorf("nil active prediction in snapshot: %w", simerr.ErrCorrupt))
		}
		r.activePreds = append(r.activePreds, p)
		r.retain(p)
	}

	// Suppress an immediate re-checkpoint at the first batch boundary;
	// checkpoint cadence restarts from the resume point.
	r.lastCkpt = snap.Stats.Committed
	r.coherent = true
	return r, nil
}
