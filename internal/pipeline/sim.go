package pipeline

import (
	"context"
	"fmt"

	"rvpsim/internal/bpred"
	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/mem"
	"rvpsim/internal/obs"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// capRing is a lazily-cleared, cycle-indexed bandwidth counter used for
// issue/dispatch/commit slot booking. Slots alias modulo its size, which
// is far larger than any in-flight time spread.
// capRing entries pack the stamping cycle and the booked count into one
// word: stamp<<capCountBits | count. One load serves the probe, and the
// ring's footprint (zeroed on every run) is a third of the two-array
// layout. Cycles are nonnegative and bounded far below 2^48 by any
// realistic budget; Config.Validate bounds every limit below 2^16.
type capRing struct {
	ent   []uint64
	limit uint64
}

const capRingBits = 16
const capRingSize = 1 << capRingBits

const capCountBits = 16
const capCountMask = 1<<capCountBits - 1

func newCapRing(limit int) *capRing {
	return &capRing{
		ent:   make([]uint64, capRingSize),
		limit: uint64(limit),
	}
}

func (c *capRing) used(cycle int64) int32 {
	e := c.ent[cycle&(capRingSize-1)]
	if e>>capCountBits != uint64(cycle) {
		return 0
	}
	return int32(e & capCountMask)
}

func (c *capRing) avail(cycle int64) bool {
	e := c.ent[cycle&(capRingSize-1)]
	return e>>capCountBits != uint64(cycle) || e&capCountMask < c.limit
}

// bookFrom books the earliest cycle >= t with a free slot and returns it.
// Equivalent to `for !avail(t) { t++ }; book(t)` with one index/load per
// probed cycle instead of two.
func (c *capRing) bookFrom(t int64) int64 {
	for {
		i := t & (capRingSize - 1)
		e := c.ent[i]
		if e>>capCountBits != uint64(t) {
			c.ent[i] = uint64(t)<<capCountBits | 1
			return t
		}
		if e&capCountMask < c.limit {
			c.ent[i] = e + 1
			return t
		}
		t++
	}
}

func (c *capRing) book(cycle int64) {
	i := cycle & (capRingSize - 1)
	if e := c.ent[i]; e>>capCountBits != uint64(cycle) {
		c.ent[i] = uint64(cycle)<<capCountBits | 1
	} else {
		c.ent[i] = e + 1
	}
}

// pendingPred tracks one in-flight value prediction for recovery
// bookkeeping. Instances are pooled per run: refs counts the live
// references (a regPending slot and, under reissue, an activePreds
// entry); when it drops to zero the record returns to the run's free
// list instead of the garbage collector.
type pendingPred struct {
	verifyAt int64
	doneAt   int64
	wrong    bool
	useSeen  bool
	refs     int32
}

// instInfo is the per-static-instruction decode information the commit
// loop needs every iteration. It is computed once per run (newRunState)
// so the loop never re-derives classification, latency, or source
// registers from the opcode.
type instInfo struct {
	srcs   [2]isa.Reg
	lat    int64
	cls    isa.Class
	nsrc   uint8
	useFPQ bool
	isMem  bool
}

// Concrete predictor dispatch kinds (runState.predKind). The loop
// type-switches once per run instead of making interface calls per
// commit; predGeneric falls back to the interface for predictors outside
// the built-in set.
const (
	predGeneric = iota
	predNone
	predDynamic
	predStatic
	predLVP
	predGabbay
)

// TraceRecord is the per-committed-instruction record delivered to a
// Tracer: when the instruction moved through each pipeline event, how
// value prediction treated it, and what it architecturally did (PC and
// destination write) — the latter lets differential harnesses compare
// the committed stream against a reference emulator.
type TraceRecord struct {
	Index     int // static instruction index
	FetchAt   int64
	Dispatch  int64
	IssueAt   int64
	DoneAt    int64
	CommitAt  int64
	Predicted bool
	Correct   bool

	PC      uint64  // simulated-memory address of the instruction
	WroteRd bool    // instruction architecturally wrote Rd
	Rd      isa.Reg // destination register (valid when WroteRd)
	Value   uint64  // value written to Rd (valid when WroteRd)
}

// Tracer receives one record per committed instruction, in commit order.
type Tracer func(TraceRecord)

// FaultInjector perturbs a run for robustness testing (see
// internal/faultinject). All hooks run on the simulation goroutine; an
// injector must not be shared between concurrent Sims.
type FaultInjector interface {
	// MemLatency may stretch (or shorten) one data-access latency.
	MemLatency(addr uint64, now int64, lat int) int
	// FlipPredict reports whether to invert this instruction's
	// predict/don't-predict decision (confidence-counter bit flip).
	FlipPredict(idx int) bool
	// CheckPoint runs once per commit batch; a non-nil error aborts the
	// run, and a panic propagates to the caller (exercising the
	// experiment runner's recovery path).
	CheckPoint(committed uint64, cycle int64) error
}

// runState is the complete per-run mutable simulation state: the oracle
// emulator, statistics, per-register and per-instruction timing, queue
// occupancy, bandwidth books, and front-end position. Keeping it in one
// struct (rather than locals of the run loop) is what makes a run
// snapshot-able: Sim.Snapshot serializes exactly these fields plus the
// subsystem states (emu, memory hierarchy, branch predictor, value
// predictor).
type runState struct {
	prog *program.Program
	pred core.Predictor
	st   *emu.State

	// Devirtualized predictor dispatch: predKind selects one of the
	// concrete fields below (set once by newRunState) so the per-commit
	// Decide/Commit calls are direct, not through the interface.
	predKind int
	drvp     *core.DynamicRVP
	srvp     *core.StaticRVP
	lvp      *core.LVP
	grvp     *core.GabbayRVP

	// Per-static-instruction decode table (see instInfo).
	info []instInfo

	// pendingPred free list (see pendingPred.refs).
	predFree []*pendingPred

	stats Stats

	// Per-register timing state.
	regReady   [isa.NumRegs]int64 // when the latest value is available
	specUntil  [isa.NumRegs]int64 // selective-reissue taint: latest verify time
	regPending [isa.NumRegs]*pendingPred

	// Per-static-instruction readiness of the previous result (for
	// KindLastValue prediction sources). Like regReady for same-register
	// sources, it collapses while the value repeats: a re-allocated
	// register would have held the (identical) value since the oldest
	// instance of the run, so consumers need not wait for the newest.
	lvReady []int64
	lvLast  []uint64

	// Queue occupancy rings: release time of the instruction N-slots back.
	intIQ  []int64
	fpIQ   []int64
	window []int64
	intN   uint64
	fpN    uint64
	winN   uint64
	// Ring cursors: intN % len(intIQ) etc., maintained incrementally so
	// the commit loop never does a 64-bit modulo. Derived state — not
	// serialized; restoreRunState recomputes them from the counters.
	intIdx int
	fpIdx  int
	winIdx int

	// Bandwidth books.
	dispatchCap *capRing
	issueCap    *capRing
	intCap      *capRing
	lsCap       *capRing
	fpCap       *capRing
	commitCap   *capRing
	portCap     *capRing // nil unless cfg.PredictPorts > 0

	// Front-end state.
	fetchCycle  int64
	minFetch    int64
	fetchSlots  int
	fetchBlocks int
	curLine     uint64

	lastDispatch int64
	lastCommit   int64
	lastCycle    int64
	activePreds  []*pendingPred

	lastCkpt uint64 // stats.Committed at the last periodic checkpoint
	lastProg uint64 // stats.Committed at the last progress callback
	coherent bool   // state is at an instruction boundary (snapshot-safe)
}

// Sim is the timing simulator. One Sim runs one program; allocate a new
// Sim (or call Run again, which resets state) per measurement.
type Sim struct {
	cfg    Config
	hier   *mem.Hierarchy
	bp     *bpred.Predictor
	tracer Tracer
	obs    *obs.Observer
	faults FaultInjector

	cur       *runState // state of the current / most recent run
	ckptEvery uint64
	ckptFn    func(*Snapshot) error
	progEvery uint64
	progFn    func(committed uint64, cycles int64)
}

// SetTracer installs a per-instruction trace callback (nil disables).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// SetFaults installs a fault injector (nil disables).
func (s *Sim) SetFaults(f FaultInjector) { s.faults = f }

// SetObserver attaches an observability sink (nil disables). With an
// observer attached, each Run publishes its statistics, stage-latency
// histograms, and the memory/branch/value-predictor counters into the
// observer's registry (batched off the hot path), and — when the
// observer has event sinks — emits one structured trace event per
// committed instruction, in commit order.
func (s *Sim) SetObserver(o *obs.Observer) { s.obs = o }

// SetCheckpoint arms periodic checkpointing: fn receives a fresh
// Snapshot at the first commit-batch boundary after each further
// `every` committed instructions. fn runs on the simulation goroutine;
// a non-nil error aborts the run with a "checkpoint"-stage SimError
// (return nil from fn to treat write failures as non-fatal). every == 0
// or fn == nil disables periodic checkpointing. Snapshot construction
// only reads simulator state, so arming checkpoints cannot change the
// committed instruction/value stream.
func (s *Sim) SetCheckpoint(every uint64, fn func(*Snapshot) error) {
	s.ckptEvery, s.ckptFn = every, fn
}

// SetProgress arms a periodic progress callback: fn receives the run's
// committed-instruction count and current cycle at the first
// commit-batch boundary after each further `every` committed
// instructions. fn runs on the simulation goroutine between committed
// instructions; it only reads the two values handed to it, so arming
// progress cannot change the committed instruction/value stream. It is
// the live-heartbeat hook the service's SSE job streams are fed from.
// every == 0 or fn == nil disables.
func (s *Sim) SetProgress(every uint64, fn func(committed uint64, cycles int64)) {
	s.progEvery, s.progFn = every, fn
}

// New builds a simulator for the configuration.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg}, nil
}

// MustNew is New, panicking on config errors.
func MustNew(cfg Config) *Sim {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// commitBatch is how many committed instructions pass between
// cancellation / fault-checkpoint polls. It bounds how much work a
// canceled context can still charge: one batch.
const commitBatch = 1024

// newRunState builds the zeroed timing state for a fresh run. When this
// Sim has run before, the previous run's state is recycled in place (see
// resetRunState) instead of reallocated: the capacity rings alone are
// ~3.5MB per run, and N simulators each reallocating them per run
// serialize in the allocator long before they saturate N cores.
func (s *Sim) newRunState(prog *program.Program, pred core.Predictor, st *emu.State) *runState {
	if r := s.cur; r != nil {
		s.resetRunState(r, prog, pred, st)
		return r
	}
	cfg := s.cfg
	r := &runState{
		prog:        prog,
		pred:        pred,
		st:          st,
		lvReady:     make([]int64, len(prog.Insts)),
		lvLast:      make([]uint64, len(prog.Insts)),
		intIQ:       make([]int64, cfg.IntIQ),
		fpIQ:        make([]int64, cfg.FPIQ),
		window:      make([]int64, cfg.Window),
		dispatchCap: newCapRing(cfg.DispatchWidth),
		issueCap:    newCapRing(cfg.IssueWidth),
		intCap:      newCapRing(cfg.IntALUs),
		lsCap:       newCapRing(cfg.LoadStore),
		fpCap:       newCapRing(cfg.FPUnits),
		commitCap:   newCapRing(cfg.CommitWidth),
		curLine:     ^uint64(0),
		coherent:    true,
	}
	if cfg.PredictPorts > 0 {
		r.portCap = newCapRing(cfg.PredictPorts)
	}
	r.info = buildInfo(prog)
	r.bindPred(pred)
	return r
}

// resetRunState recycles the previous run's buffers for a fresh run on
// the same Sim: rings, queues, and dense per-instruction tables are
// cleared in place, the pendingPred pool carries over (a per-worker
// pool, never shared between Sims), and the decode table survives when
// the program is the same. The result is indistinguishable from a
// freshly allocated runState — TestSimReuseDeterminism proves a reused
// Sim commits the byte-identical stream as a fresh one.
func (s *Sim) resetRunState(r *runState, prog *program.Program, pred core.Predictor, st *emu.State) {
	// Return every live prediction record to the free list. Refcounts are
	// exact (a regPending slot and, under reissue, an activePreds entry),
	// so each record lands in the pool exactly once.
	for _, p := range r.activePreds {
		r.release(p)
	}
	r.activePreds = r.activePreds[:0]
	for i, p := range r.regPending {
		if p != nil {
			r.release(p)
			r.regPending[i] = nil
		}
	}

	if r.prog != prog {
		r.lvReady = make([]int64, len(prog.Insts))
		r.lvLast = make([]uint64, len(prog.Insts))
		r.info = buildInfo(prog)
	} else {
		clear(r.lvReady)
		clear(r.lvLast)
	}
	r.prog, r.pred, r.st = prog, pred, st

	clear(r.intIQ)
	clear(r.fpIQ)
	clear(r.window)
	r.intN, r.fpN, r.winN = 0, 0, 0
	r.intIdx, r.fpIdx, r.winIdx = 0, 0, 0

	// The rings must be cleared, not merely reused: a stale stamp from
	// the prior run would alias a cycle of this one.
	for _, c := range []*capRing{r.dispatchCap, r.issueCap, r.intCap, r.lsCap, r.fpCap, r.commitCap, r.portCap} {
		if c != nil {
			clear(c.ent)
		}
	}

	r.stats = Stats{}
	r.regReady = [isa.NumRegs]int64{}
	r.specUntil = [isa.NumRegs]int64{}
	r.fetchCycle, r.minFetch = 0, 0
	r.fetchSlots, r.fetchBlocks = 0, 0
	r.curLine = ^uint64(0)
	r.lastDispatch, r.lastCommit, r.lastCycle = 0, 0, 0
	r.lastCkpt, r.lastProg = 0, 0
	r.coherent = true
	r.bindPred(pred)
}

// buildInfo decodes every static instruction once; the loop indexes this
// table instead of re-deriving class/latency/sources per commit.
func buildInfo(prog *program.Program) []instInfo {
	info := make([]instInfo, len(prog.Insts))
	for i, in := range prog.Insts {
		cls := isa.Classify(in.Op)
		inf := instInfo{
			cls:    cls,
			lat:    int64(cls.Latency()),
			useFPQ: cls == isa.ClassFPAdd || cls == isa.ClassFPMul || cls == isa.ClassFPDiv,
			isMem:  cls == isa.ClassLoad || cls == isa.ClassStore,
		}
		srcs := in.Sources(inf.srcs[:0])
		inf.nsrc = uint8(len(srcs))
		info[i] = inf
	}
	return info
}

// bindPred devirtualizes the four built-in predictors (and skips the
// baseline's no-op calls entirely); anything else stays on the interface
// path. It also pre-sizes per-static-instruction predictor state so the
// commit path never grows a slice mid-run.
func (r *runState) bindPred(pred core.Predictor) {
	r.predKind, r.drvp, r.srvp, r.lvp, r.grvp = predGeneric, nil, nil, nil, nil
	switch p := pred.(type) {
	case core.NoPredictor:
		r.predKind = predNone
	case *core.DynamicRVP:
		r.predKind, r.drvp = predDynamic, p
	case *core.StaticRVP:
		r.predKind, r.srvp = predStatic, p
	case *core.LVP:
		r.predKind, r.lvp = predLVP, p
	case *core.GabbayRVP:
		r.predKind, r.grvp = predGabbay, p
	}
	if sh, ok := pred.(core.SizeHinter); ok {
		sh.SizeHint(len(r.info))
	}
}

// decide dispatches Decide through the devirtualized fast path.
func (r *runState) decide(idx int, in isa.Inst) core.Decision {
	switch r.predKind {
	case predNone:
		return core.Decision{}
	case predDynamic:
		return r.drvp.Decide(idx, in)
	case predStatic:
		return r.srvp.Decide(idx, in)
	case predLVP:
		return r.lvp.Decide(idx, in)
	case predGabbay:
		return r.grvp.Decide(idx, in)
	}
	return r.pred.Decide(idx, in)
}

// commitPred dispatches Commit through the devirtualized fast path.
func (r *runState) commitPred(idx int, in isa.Inst, predicted, actual uint64) {
	switch r.predKind {
	case predNone:
	case predDynamic:
		r.drvp.Commit(idx, in, predicted, actual)
	case predStatic:
		r.srvp.Commit(idx, in, predicted, actual)
	case predLVP:
		r.lvp.Commit(idx, in, predicted, actual)
	case predGabbay:
		r.grvp.Commit(idx, in, predicted, actual)
	default:
		r.pred.Commit(idx, in, predicted, actual)
	}
}

// newPending takes a record from the free list (or allocates during
// warm-up, before the pool has grown to the run's in-flight high-water
// mark). The caller owns the first reference via retain.
func (r *runState) newPending(verifyAt, doneAt int64, wrong bool) *pendingPred {
	if n := len(r.predFree); n > 0 {
		p := r.predFree[n-1]
		r.predFree = r.predFree[:n-1]
		*p = pendingPred{verifyAt: verifyAt, doneAt: doneAt, wrong: wrong}
		return p
	}
	return &pendingPred{verifyAt: verifyAt, doneAt: doneAt, wrong: wrong}
}

func (r *runState) retain(p *pendingPred) { p.refs++ }

// release drops one reference, returning the record to the pool when no
// regPending slot or activePreds entry still points at it.
func (r *runState) release(p *pendingPred) {
	p.refs--
	if p.refs == 0 {
		r.predFree = append(r.predFree, p)
	}
}

// Run simulates prog under value predictor pred for at most maxInsts
// committed instructions (0 = until HALT) and returns the statistics.
func (s *Sim) Run(prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	return s.RunContext(context.Background(), prog, pred, maxInsts)
}

// RunContext is Run honoring ctx: cancellation and deadlines are observed
// at commit-batch granularity (the run stops within one batch of the
// context ending, returning coherent partial Stats and an error wrapping
// ctx.Err()). When cfg.WatchdogCycles > 0, a forward-progress watchdog
// additionally aborts with an error wrapping simerr.ErrNoProgress if no
// instruction commits for more than that many simulated cycles.
func (s *Sim) RunContext(ctx context.Context, prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	st, err := emu.New(prog)
	if err != nil {
		return Stats{}, simerr.New("emu", err)
	}
	if err := s.startRun(pred); err != nil {
		return Stats{}, err
	}
	r := s.newRunState(prog, pred, st)
	s.cur = r
	return s.loop(ctx, r, maxInsts)
}

// startRun (re)builds the per-run microarchitectural subsystems. The
// memory hierarchy and branch predictor are allocated once per Sim and
// reset between runs: their geometry is fixed by the config, and reuse
// keeps N parallel simulators from reallocating ~100KB of tag arrays
// per run.
func (s *Sim) startRun(pred core.Predictor) error {
	if s.hier == nil {
		h, err := mem.NewHierarchy(s.cfg.Mem)
		if err != nil {
			return simerr.New("mem", err)
		}
		s.hier = h
	} else {
		s.hier.Reset()
	}
	if s.bp == nil {
		s.bp = bpred.New(s.cfg.Bpred)
	} else {
		s.bp.Reset()
	}
	pred.Reset()
	return nil
}

// ResumeContext continues a run from a Snapshot: the simulator state is
// rebuilt exactly as it was when the snapshot was taken, and simulation
// proceeds until maxInsts *total* committed instructions (0 = until
// HALT). The restored run commits the identical instruction/value stream
// — and ends with identical Stats — as an uninterrupted run of the same
// program, predictor, and configuration.
//
// prog must be the same program the snapshot was taken from, and pred a
// predictor constructed identically to the original (its dynamic state
// is overwritten from the snapshot; it must implement
// core.Checkpointable). Mismatches are rejected with errors wrapping
// simerr.ErrCorrupt, not silently misrestored.
func (s *Sim) ResumeContext(ctx context.Context, snap *Snapshot, prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	if snap == nil {
		return Stats{}, simerr.Newf("checkpoint", "nil snapshot")
	}
	if err := snap.validateFor(s.cfg, prog, pred); err != nil {
		return Stats{}, err
	}
	st, err := emu.Restore(prog, snap.Emu)
	if err != nil {
		return Stats{}, simerr.New("checkpoint", err)
	}
	if err := s.startRun(pred); err != nil {
		return Stats{}, err
	}
	if err := s.hier.Restore(snap.Mem); err != nil {
		return Stats{}, simerr.New("checkpoint", err)
	}
	if err := s.bp.Restore(snap.Bpred); err != nil {
		return Stats{}, simerr.New("checkpoint", err)
	}
	if err := pred.(core.Checkpointable).RestoreState(snap.Predictor); err != nil {
		return Stats{}, simerr.New("checkpoint", err)
	}
	r, err := s.restoreRunState(snap, prog, pred, st)
	if err != nil {
		return Stats{}, err
	}
	s.cur = r
	return s.loop(ctx, r, maxInsts)
}

// RestoreSim builds a fresh simulator configured exactly as the one the
// snapshot was taken from. Follow with ResumeContext to continue the run.
func RestoreSim(snap *Snapshot) (*Sim, error) {
	if snap == nil {
		return nil, simerr.Newf("checkpoint", "nil snapshot")
	}
	return New(snap.Config)
}

// loop is the simulation main loop, shared by fresh and resumed runs.
func (s *Sim) loop(ctx context.Context, r *runState, maxInsts uint64) (Stats, error) {
	cfg := s.cfg
	prog, pred, st := r.prog, r.pred, r.st
	var e emu.Exec // reused across iterations (StepInto)

	// Observability: batched metrics and (when sinks are attached)
	// per-instruction structured events.
	var m *meters
	if s.obs != nil {
		m = newMeters(s.obs.Registry())
	}
	emitEvents := s.obs.HasSinks()
	var ev obs.Event

	resetFetch := func(to int64) {
		r.fetchCycle = to
		r.fetchSlots = 0
		r.fetchBlocks = 0
		r.curLine = ^uint64(0)
	}

	// finalize publishes end-of-run statistics. It runs on every exit
	// path — normal completion, oracle error, cancellation, watchdog,
	// injected fault — so aborted runs still return coherent partial
	// Stats.
	finalize := func() {
		r.stats.Cycles = r.lastCycle
		r.stats.DL1Hits, r.stats.DL1Misses = s.hier.L1D.Hits, s.hier.L1D.Misses
		r.stats.IL1Hits, r.stats.IL1Misses = s.hier.L1I.Hits, s.hier.L1I.Misses
		r.stats.L2Hits, r.stats.L2Misses = s.hier.L2.Hits, s.hier.L2.Misses
		r.stats.CondBranches = s.bp.CondSeen
		r.stats.CondMispredict = s.bp.CondMispred
		r.stats.TargetMispred = s.bp.TargetMiss + s.bp.RASWrong
		if m != nil {
			m.flush(&r.stats)
			s.hier.PublishMetrics(m.reg)
			s.bp.PublishMetrics(m.reg)
			if pub, ok := pred.(obs.Publisher); ok {
				pub.PublishMetrics(m.reg)
			}
		}
	}

	wd := int64(cfg.WatchdogCycles)

	for {
		if maxInsts > 0 && r.stats.Committed >= maxInsts {
			break
		}
		if r.stats.Committed&(commitBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				finalize()
				return r.stats, &simerr.SimError{
					Stage: "pipeline", Workload: prog.Name,
					Cycle: r.lastCycle, HasCycle: true, Err: err,
				}
			}
			if s.faults != nil {
				if err := s.faults.CheckPoint(r.stats.Committed, r.lastCycle); err != nil {
					finalize()
					return r.stats, &simerr.SimError{
						Stage: "faultinject", Workload: prog.Name,
						Cycle: r.lastCycle, HasCycle: true, Err: err,
					}
				}
			}
			if s.progFn != nil && s.progEvery > 0 && r.stats.Committed >= r.lastProg+s.progEvery {
				r.lastProg = r.stats.Committed
				s.progFn(r.stats.Committed, r.lastCycle)
			}
			if s.ckptFn != nil && s.ckptEvery > 0 && r.stats.Committed >= r.lastCkpt+s.ckptEvery {
				r.lastCkpt = r.stats.Committed
				snap, err := s.buildSnapshot(r)
				if err == nil {
					err = s.ckptFn(snap)
				}
				if err != nil {
					finalize()
					return r.stats, &simerr.SimError{
						Stage: "checkpoint", Workload: prog.Name,
						Cycle: r.lastCycle, HasCycle: true, Err: err,
					}
				}
			}
		}
		r.coherent = false
		ok := st.StepInto(&e)
		if !ok {
			if st.Err() != nil {
				finalize()
				return r.stats, &simerr.SimError{
					Stage: "emu", Workload: prog.Name,
					Cycle: r.lastCycle, HasCycle: true,
					Err: fmt.Errorf("oracle: %w", st.Err()),
				}
			}
			r.coherent = true
			break
		}
		in := e.Inst
		idx := e.Index
		inf := &r.info[idx]
		cls := inf.cls
		srcs := inf.srcs[:inf.nsrc]

		// ---- Refetch-recovery trigger: first use of a mispredicted value
		// squashes from this instruction onward.
		if cfg.Recovery == RecoverRefetch {
			for _, reg := range srcs {
				if reg.IsZero() {
					continue
				}
				if p := r.regPending[reg]; p != nil && p.wrong && !p.useSeen {
					p.useSeen = true
					redirect := p.doneAt + int64(cfg.MispredPenalty)
					if redirect > r.minFetch {
						r.minFetch = redirect
					}
					r.stats.Refetches++
				}
			}
		}

		// ---- Fetch.
		if r.fetchCycle < r.minFetch {
			resetFetch(r.minFetch)
		}
		line := e.PC &^ 63
		if line != r.curLine {
			if lat := s.hier.AccessInstAt(e.PC, r.fetchCycle); lat > 0 {
				resetFetch(r.fetchCycle + int64(lat))
			}
			r.curLine = line
		}
		if r.fetchSlots >= cfg.FetchWidth {
			resetFetch(r.fetchCycle + 1)
			r.curLine = line
		}
		myFetch := r.fetchCycle
		r.fetchSlots++

		// ---- Dispatch: in order, gated by window, queue space, and
		// dispatch bandwidth.
		dispatch := myFetch + int64(cfg.FrontLatency)
		if dispatch < r.lastDispatch {
			dispatch = r.lastDispatch
		}
		if r.winN >= uint64(cfg.Window) {
			if t := r.window[r.winIdx]; t > dispatch {
				r.stats.StallWindow += t - dispatch
				dispatch = t
			}
		}
		useFPQ := inf.useFPQ
		if useFPQ {
			if r.fpN >= uint64(cfg.FPIQ) {
				if t := r.fpIQ[r.fpIdx]; t > dispatch {
					r.stats.StallFPIQ += t - dispatch
					dispatch = t
				}
			}
		} else {
			if r.intN >= uint64(cfg.IntIQ) {
				if t := r.intIQ[r.intIdx]; t > dispatch {
					r.stats.StallIntIQ += t - dispatch
					dispatch = t
				}
			}
		}
		dispatch = r.dispatchCap.bookFrom(dispatch)
		r.lastDispatch = dispatch

		// ---- Value prediction decision.
		var dec core.Decision
		var predVal uint64
		var predReady int64
		predicted := false
		correct := false
		if e.WroteRd {
			r.stats.Eligible++
			dec = r.decide(idx, in)
			if s.faults != nil && dec.Kind != core.KindNone && s.faults.FlipPredict(idx) {
				dec.Predict = !dec.Predict
			}
			if dec.Kind != core.KindNone || dec.Predict {
				switch dec.Kind {
				case core.KindSameReg:
					predVal = e.OldDest
					predReady = r.regReady[in.Rd]
				case core.KindOtherReg:
					if dec.Reg == in.Rd {
						predVal = e.OldDest
					} else {
						predVal = st.Regs[dec.Reg]
					}
					predReady = r.regReady[dec.Reg]
				case core.KindLastValue:
					predVal = dec.Value
					predReady = r.lvReady[idx]
				case core.KindBuffer:
					predVal = dec.Value
					predReady = dispatch
				}
			}
			if dec.Predict {
				predicted = true
				// Non-load register-source predictions need an extra
				// register read port to fetch the prior value for the
				// verification compare; buffer-based predictions (LVP)
				// come with their own value datapath instead.
				if cls != isa.ClassLoad && dec.Kind != core.KindBuffer && r.portCap != nil {
					if r.portCap.avail(dispatch) {
						r.portCap.book(dispatch)
					} else {
						predicted = false
						r.stats.PortStarved++
					}
				}
			}
			if predicted {
				correct = predVal == e.NewDest
				r.stats.Predicted++
				if correct {
					r.stats.PredictCorrect++
				} else {
					r.stats.PredictWrong++
				}
			}
		}

		// ---- Source operands, first-use detection, selective taint.
		srcReady := dispatch + 1
		var holdUntil int64
		for _, reg := range srcs {
			if reg.IsZero() {
				continue
			}
			if t := r.regReady[reg]; t > srcReady {
				srcReady = t
			}
			if cfg.Recovery == RecoverSelective && r.specUntil[reg] > holdUntil {
				holdUntil = r.specUntil[reg]
			}
			if p := r.regPending[reg]; p != nil && !p.useSeen {
				p.useSeen = true
			}
		}

		// Reissue: every instruction dispatched after a pending
		// prediction's first use stays queued until it verifies.
		if cfg.Recovery == RecoverReissue {
			live := r.activePreds[:0]
			for _, p := range r.activePreds {
				if p.verifyAt > dispatch {
					live = append(live, p)
					if p.useSeen && p.verifyAt > holdUntil {
						holdUntil = p.verifyAt
					}
				} else {
					r.release(p)
				}
			}
			r.activePreds = live
		}

		// ---- Issue: earliest cycle with a free unit and issue slot.
		t := srcReady
		if t < dispatch+1 {
			t = dispatch + 1
		}
		isMem := inf.isMem
		var unit *capRing
		switch cls {
		case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			unit = r.fpCap
		default:
			unit = r.intCap
		}
		for {
			if r.issueCap.avail(t) && unit.avail(t) && (!isMem || r.lsCap.avail(t)) {
				break
			}
			t++
		}
		r.issueCap.book(t)
		unit.book(t)
		if isMem {
			r.lsCap.book(t)
		}
		issueAt := t

		// ---- Completion.
		doneAt := issueAt + inf.lat
		if isMem {
			lat := s.hier.AccessDataAt(e.EA, issueAt)
			if s.faults != nil {
				lat = s.faults.MemLatency(e.EA, issueAt, lat)
			}
			doneAt += int64(lat)
			if cls == isa.ClassLoad {
				r.stats.Loads++
			} else {
				r.stats.Stores++
			}
		}

		// ---- Prediction verification and destination readiness.
		// taintOut is the speculation horizon this instruction's result
		// carries to its consumers (selective reissue): inherited source
		// taints plus, when predicted, its own verification time. The
		// predicted instruction itself is NOT held in the queue — it
		// cannot reissue; only its dependents are.
		var verifyAt int64
		taintOut := holdUntil
		if e.WroteRd {
			if predicted {
				verifyAt = doneAt
				if predReady > verifyAt {
					verifyAt = predReady
				}
				pp := r.newPending(verifyAt, doneAt, !correct)
				if old := r.regPending[in.Rd]; old != nil {
					r.release(old)
				}
				r.regPending[in.Rd] = pp
				r.retain(pp)
				if cfg.Recovery == RecoverReissue {
					r.activePreds = append(r.activePreds, pp)
					r.retain(pp)
				}
				switch {
				case correct:
					// Consumers read the prior register value.
					rr := predReady
					if doneAt < rr {
						rr = doneAt
					}
					r.regReady[in.Rd] = rr
				case cfg.Recovery == RecoverRefetch:
					r.regReady[in.Rd] = doneAt
				default:
					// Dependents reissue one cycle after the real value.
					r.regReady[in.Rd] = doneAt + 1
				}
				if cfg.Recovery == RecoverSelective && verifyAt > taintOut {
					taintOut = verifyAt
				}
			} else {
				r.regReady[in.Rd] = doneAt
				if old := r.regPending[in.Rd]; old != nil {
					r.release(old)
					r.regPending[in.Rd] = nil
				}
			}
			if cfg.Recovery == RecoverSelective {
				r.specUntil[in.Rd] = taintOut
			}
			if e.NewDest == r.lvLast[idx] {
				if doneAt < r.lvReady[idx] {
					r.lvReady[idx] = doneAt
				}
			} else {
				r.lvReady[idx] = doneAt
				r.lvLast[idx] = e.NewDest
			}
		}

		// ---- Queue slot release.
		qFree := issueAt + 1
		if holdUntil > qFree {
			qFree = holdUntil
		}
		if useFPQ {
			r.fpIQ[r.fpIdx] = qFree
			r.fpN++
			if r.fpIdx++; r.fpIdx == cfg.FPIQ {
				r.fpIdx = 0
			}
		} else {
			r.intIQ[r.intIdx] = qFree
			r.intN++
			if r.intIdx++; r.intIdx == cfg.IntIQ {
				r.intIdx = 0
			}
		}

		// ---- Control transfers: predictor consultation and redirects.
		if e.IsCTI {
			r.stats.Branches++
			s.handleCTI(&e, idx, myFetch, doneAt, &r.minFetch, &r.fetchBlocks)
		}

		// ---- Commit: in order, after completion and verification.
		commitAt := doneAt + 1
		if predicted && verifyAt+1 > commitAt {
			commitAt = verifyAt + 1
		}
		if commitAt < r.lastCommit {
			commitAt = r.lastCommit
		}
		commitAt = r.commitCap.bookFrom(commitAt)
		if wd > 0 && commitAt-r.lastCommit > wd {
			finalize()
			return r.stats, &simerr.SimError{
				Stage: "pipeline", Workload: prog.Name,
				PC: e.PC, Cycle: commitAt, HasPC: true, HasCycle: true,
				Err: fmt.Errorf("no commit for %d cycles (watchdog %d): %w",
					commitAt-r.lastCommit, wd, simerr.ErrNoProgress),
			}
		}
		r.lastCommit = commitAt
		r.window[r.winIdx] = commitAt
		r.winN++
		if r.winIdx++; r.winIdx == cfg.Window {
			r.winIdx = 0
		}
		if commitAt > r.lastCycle {
			r.lastCycle = commitAt
		}
		r.stats.Committed++
		if m != nil {
			m.observe(commitAt-myFetch, issueAt-dispatch, commitAt-dispatch)
			if r.stats.Committed&(flushEvery-1) == 0 {
				m.flush(&r.stats)
			}
		}

		// ---- Train the value predictor (in program order).
		if e.WroteRd {
			r.commitPred(idx, in, predVal, e.NewDest)
		}

		if s.tracer != nil {
			s.tracer(TraceRecord{
				Index:     idx,
				FetchAt:   myFetch,
				Dispatch:  dispatch,
				IssueAt:   issueAt,
				DoneAt:    doneAt,
				CommitAt:  commitAt,
				Predicted: predicted,
				Correct:   correct,
				PC:        e.PC,
				WroteRd:   e.WroteRd,
				Rd:        in.Rd,
				Value:     e.NewDest,
			})
		}
		if emitEvents {
			ev = obs.Event{
				Index:     idx,
				Fetch:     myFetch,
				Dispatch:  dispatch,
				Issue:     issueAt,
				Done:      doneAt,
				Commit:    commitAt,
				Predicted: predicted,
				Correct:   correct,
			}
			s.obs.Emit(&ev)
		}

		r.coherent = true
		if in.Op == isa.HALT {
			break
		}
	}

	finalize()
	return r.stats, nil
}

// handleCTI models the front end's interaction with one control transfer:
// direction prediction, target prediction, taken-branch fetch breaks, and
// redirect penalties for mispredictions.
func (s *Sim) handleCTI(e *emu.Exec, idx int, myFetch, doneAt int64, minFetch *int64, fetchBlocks *int) {
	cfg := s.cfg
	redirect := func(at int64) {
		if at > *minFetch {
			*minFetch = at
		}
	}
	takenBreak := func() {
		*fetchBlocks++
		if *fetchBlocks >= cfg.MaxFetchBlocks {
			// The fetch unit cannot follow another taken branch this
			// cycle; fetch resumes next cycle.
			redirect(myFetch + 1)
		}
	}
	switch {
	case isa.IsCondBranch(e.Inst.Op):
		predTaken := s.bp.PredictCond(idx)
		dirCorrect := s.bp.UpdateCond(idx, e.Taken, predTaken)
		if !dirCorrect {
			redirect(doneAt + int64(cfg.MispredPenalty))
			return
		}
		if !e.Taken {
			return // correctly predicted not-taken: no fetch break
		}
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			// Direction known taken but target unknown in the BTB: the
			// target is static, so decode redirects (misfetch).
			redirect(myFetch + int64(cfg.MisfetchPenalty))
		}
	case e.Inst.Op == isa.BR:
		if e.Inst.Rd == isa.RRA {
			s.bp.OnFetchCall(e.Index + 1)
		}
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			redirect(myFetch + int64(cfg.MisfetchPenalty))
		}
	case e.Inst.Op == isa.JSR:
		s.bp.OnFetchCall(e.Index + 1)
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			// Register-indirect target: resolved at execute.
			redirect(doneAt + int64(cfg.MispredPenalty))
		}
	case e.Inst.Op == isa.RET:
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		s.bp.OnFetchReturn()
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			redirect(doneAt + int64(cfg.MispredPenalty))
		}
	}
}
