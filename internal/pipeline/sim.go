package pipeline

import (
	"context"
	"fmt"

	"rvpsim/internal/bpred"
	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/mem"
	"rvpsim/internal/obs"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// capRing is a lazily-cleared, cycle-indexed bandwidth counter used for
// issue/dispatch/commit slot booking. Slots alias modulo its size, which
// is far larger than any in-flight time spread.
type capRing struct {
	stamp []int64
	count []int32
	limit int32
}

const capRingBits = 16
const capRingSize = 1 << capRingBits

func newCapRing(limit int) *capRing {
	return &capRing{
		stamp: make([]int64, capRingSize),
		count: make([]int32, capRingSize),
		limit: int32(limit),
	}
}

func (c *capRing) used(cycle int64) int32 {
	i := cycle & (capRingSize - 1)
	if c.stamp[i] != cycle {
		return 0
	}
	return c.count[i]
}

func (c *capRing) avail(cycle int64) bool { return c.used(cycle) < c.limit }

func (c *capRing) book(cycle int64) {
	i := cycle & (capRingSize - 1)
	if c.stamp[i] != cycle {
		c.stamp[i] = cycle
		c.count[i] = 0
	}
	c.count[i]++
}

// pendingPred tracks one in-flight value prediction for recovery
// bookkeeping.
type pendingPred struct {
	verifyAt int64
	doneAt   int64
	wrong    bool
	useSeen  bool
}

// TraceRecord is the per-committed-instruction timing record delivered to
// a Tracer: when the instruction moved through each pipeline event and
// how value prediction treated it.
type TraceRecord struct {
	Index     int // static instruction index
	FetchAt   int64
	Dispatch  int64
	IssueAt   int64
	DoneAt    int64
	CommitAt  int64
	Predicted bool
	Correct   bool
}

// Tracer receives one record per committed instruction, in commit order.
type Tracer func(TraceRecord)

// FaultInjector perturbs a run for robustness testing (see
// internal/faultinject). All hooks run on the simulation goroutine; an
// injector must not be shared between concurrent Sims.
type FaultInjector interface {
	// MemLatency may stretch (or shorten) one data-access latency.
	MemLatency(addr uint64, now int64, lat int) int
	// FlipPredict reports whether to invert this instruction's
	// predict/don't-predict decision (confidence-counter bit flip).
	FlipPredict(idx int) bool
	// CheckPoint runs once per commit batch; a non-nil error aborts the
	// run, and a panic propagates to the caller (exercising the
	// experiment runner's recovery path).
	CheckPoint(committed uint64, cycle int64) error
}

// Sim is the timing simulator. One Sim runs one program; allocate a new
// Sim (or call Run again, which resets state) per measurement.
type Sim struct {
	cfg    Config
	hier   *mem.Hierarchy
	bp     *bpred.Predictor
	tracer Tracer
	obs    *obs.Observer
	faults FaultInjector
}

// SetTracer installs a per-instruction trace callback (nil disables).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// SetFaults installs a fault injector (nil disables).
func (s *Sim) SetFaults(f FaultInjector) { s.faults = f }

// SetObserver attaches an observability sink (nil disables). With an
// observer attached, each Run publishes its statistics, stage-latency
// histograms, and the memory/branch/value-predictor counters into the
// observer's registry (batched off the hot path), and — when the
// observer has event sinks — emits one structured trace event per
// committed instruction, in commit order.
func (s *Sim) SetObserver(o *obs.Observer) { s.obs = o }

// New builds a simulator for the configuration.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg}, nil
}

// MustNew is New, panicking on config errors.
func MustNew(cfg Config) *Sim {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// commitBatch is how many committed instructions pass between
// cancellation / fault-checkpoint polls. It bounds how much work a
// canceled context can still charge: one batch.
const commitBatch = 1024

// Run simulates prog under value predictor pred for at most maxInsts
// committed instructions (0 = until HALT) and returns the statistics.
func (s *Sim) Run(prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	return s.RunContext(context.Background(), prog, pred, maxInsts)
}

// RunContext is Run honoring ctx: cancellation and deadlines are observed
// at commit-batch granularity (the run stops within one batch of the
// context ending, returning coherent partial Stats and an error wrapping
// ctx.Err()). When cfg.WatchdogCycles > 0, a forward-progress watchdog
// additionally aborts with an error wrapping simerr.ErrNoProgress if no
// instruction commits for more than that many simulated cycles.
func (s *Sim) RunContext(ctx context.Context, prog *program.Program, pred core.Predictor, maxInsts uint64) (Stats, error) {
	st, err := emu.New(prog)
	if err != nil {
		return Stats{}, simerr.New("emu", err)
	}
	s.hier, err = mem.NewHierarchy(s.cfg.Mem)
	if err != nil {
		return Stats{}, simerr.New("mem", err)
	}
	s.bp = bpred.New(s.cfg.Bpred)
	pred.Reset()

	var stats Stats
	cfg := s.cfg

	// Per-register timing state.
	var regReady [isa.NumRegs]int64  // when the latest value is available
	var specUntil [isa.NumRegs]int64 // selective-reissue taint: latest verify time
	var regPending [isa.NumRegs]*pendingPred

	// Per-static-instruction readiness of the previous result (for
	// KindLastValue prediction sources). Like regReady for same-register
	// sources, it collapses while the value repeats: a re-allocated
	// register would have held the (identical) value since the oldest
	// instance of the run, so consumers need not wait for the newest.
	lvReady := make([]int64, len(prog.Insts))
	lvLast := make([]uint64, len(prog.Insts))

	// Queue occupancy rings: release time of the instruction N-slots back.
	intIQ := make([]int64, cfg.IntIQ)
	fpIQ := make([]int64, cfg.FPIQ)
	window := make([]int64, cfg.Window)
	var intN, fpN, winN uint64

	// Bandwidth books.
	dispatchCap := newCapRing(cfg.DispatchWidth)
	issueCap := newCapRing(cfg.IssueWidth)
	intCap := newCapRing(cfg.IntALUs)
	lsCap := newCapRing(cfg.LoadStore)
	fpCap := newCapRing(cfg.FPUnits)
	commitCap := newCapRing(cfg.CommitWidth)
	var portCap *capRing
	if cfg.PredictPorts > 0 {
		portCap = newCapRing(cfg.PredictPorts)
	}

	// Front-end state.
	var fetchCycle, minFetch int64
	fetchSlots, fetchBlocks := 0, 0
	curLine := ^uint64(0)

	var lastDispatch, lastCommit, lastCycle int64
	var activePreds []*pendingPred
	srcBuf := make([]isa.Reg, 0, 4)

	// Observability: batched metrics and (when sinks are attached)
	// per-instruction structured events.
	var m *meters
	if s.obs != nil {
		m = newMeters(s.obs.Registry())
	}
	emitEvents := s.obs.HasSinks()
	var ev obs.Event

	resetFetch := func(to int64) {
		fetchCycle = to
		fetchSlots = 0
		fetchBlocks = 0
		curLine = ^uint64(0)
	}

	// finalize publishes end-of-run statistics. It runs on every exit
	// path — normal completion, oracle error, cancellation, watchdog,
	// injected fault — so aborted runs still return coherent partial
	// Stats.
	finalize := func() {
		stats.Cycles = lastCycle
		stats.DL1Hits, stats.DL1Misses = s.hier.L1D.Hits, s.hier.L1D.Misses
		stats.IL1Hits, stats.IL1Misses = s.hier.L1I.Hits, s.hier.L1I.Misses
		stats.L2Hits, stats.L2Misses = s.hier.L2.Hits, s.hier.L2.Misses
		stats.CondBranches = s.bp.CondSeen
		stats.CondMispredict = s.bp.CondMispred
		stats.TargetMispred = s.bp.TargetMiss + s.bp.RASWrong
		if m != nil {
			m.flush(&stats)
			s.hier.PublishMetrics(m.reg)
			s.bp.PublishMetrics(m.reg)
			if pub, ok := pred.(obs.Publisher); ok {
				pub.PublishMetrics(m.reg)
			}
		}
	}

	wd := int64(cfg.WatchdogCycles)

	for {
		if maxInsts > 0 && stats.Committed >= maxInsts {
			break
		}
		if stats.Committed&(commitBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				finalize()
				return stats, &simerr.SimError{
					Stage: "pipeline", Workload: prog.Name,
					Cycle: lastCycle, HasCycle: true, Err: err,
				}
			}
			if s.faults != nil {
				if err := s.faults.CheckPoint(stats.Committed, lastCycle); err != nil {
					finalize()
					return stats, &simerr.SimError{
						Stage: "faultinject", Workload: prog.Name,
						Cycle: lastCycle, HasCycle: true, Err: err,
					}
				}
			}
		}
		e, ok := st.Step()
		if !ok {
			if st.Err() != nil {
				finalize()
				return stats, &simerr.SimError{
					Stage: "emu", Workload: prog.Name,
					Cycle: lastCycle, HasCycle: true,
					Err: fmt.Errorf("oracle: %w", st.Err()),
				}
			}
			break
		}
		in := e.Inst
		idx := e.Index
		cls := isa.Classify(in.Op)
		srcs := in.Sources(srcBuf[:0])

		// ---- Refetch-recovery trigger: first use of a mispredicted value
		// squashes from this instruction onward.
		if cfg.Recovery == RecoverRefetch {
			for _, r := range srcs {
				if r.IsZero() {
					continue
				}
				if p := regPending[r]; p != nil && p.wrong && !p.useSeen {
					p.useSeen = true
					redirect := p.doneAt + int64(cfg.MispredPenalty)
					if redirect > minFetch {
						minFetch = redirect
					}
					stats.Refetches++
				}
			}
		}

		// ---- Fetch.
		if fetchCycle < minFetch {
			resetFetch(minFetch)
		}
		line := e.PC &^ 63
		if line != curLine {
			if lat := s.hier.AccessInstAt(e.PC, fetchCycle); lat > 0 {
				resetFetch(fetchCycle + int64(lat))
			}
			curLine = line
		}
		if fetchSlots >= cfg.FetchWidth {
			resetFetch(fetchCycle + 1)
			curLine = line
		}
		myFetch := fetchCycle
		fetchSlots++

		// ---- Dispatch: in order, gated by window, queue space, and
		// dispatch bandwidth.
		dispatch := myFetch + int64(cfg.FrontLatency)
		if dispatch < lastDispatch {
			dispatch = lastDispatch
		}
		if winN >= uint64(cfg.Window) {
			if t := window[winN%uint64(cfg.Window)]; t > dispatch {
				stats.StallWindow += t - dispatch
				dispatch = t
			}
		}
		useFPQ := cls == isa.ClassFPAdd || cls == isa.ClassFPMul || cls == isa.ClassFPDiv
		if useFPQ {
			if fpN >= uint64(cfg.FPIQ) {
				if t := fpIQ[fpN%uint64(cfg.FPIQ)]; t > dispatch {
					stats.StallFPIQ += t - dispatch
					dispatch = t
				}
			}
		} else {
			if intN >= uint64(cfg.IntIQ) {
				if t := intIQ[intN%uint64(cfg.IntIQ)]; t > dispatch {
					stats.StallIntIQ += t - dispatch
					dispatch = t
				}
			}
		}
		for !dispatchCap.avail(dispatch) {
			dispatch++
		}
		dispatchCap.book(dispatch)
		lastDispatch = dispatch

		// ---- Value prediction decision.
		var dec core.Decision
		var predVal uint64
		var predReady int64
		predicted := false
		correct := false
		if e.WroteRd {
			stats.Eligible++
			dec = pred.Decide(idx, in)
			if s.faults != nil && dec.Kind != core.KindNone && s.faults.FlipPredict(idx) {
				dec.Predict = !dec.Predict
			}
			if dec.Kind != core.KindNone || dec.Predict {
				switch dec.Kind {
				case core.KindSameReg:
					predVal = e.OldDest
					predReady = regReady[in.Rd]
				case core.KindOtherReg:
					if dec.Reg == in.Rd {
						predVal = e.OldDest
					} else {
						predVal = st.Regs[dec.Reg]
					}
					predReady = regReady[dec.Reg]
				case core.KindLastValue:
					predVal = dec.Value
					predReady = lvReady[idx]
				case core.KindBuffer:
					predVal = dec.Value
					predReady = dispatch
				}
			}
			if dec.Predict {
				predicted = true
				// Non-load register-source predictions need an extra
				// register read port to fetch the prior value for the
				// verification compare; buffer-based predictions (LVP)
				// come with their own value datapath instead.
				if cls != isa.ClassLoad && dec.Kind != core.KindBuffer && portCap != nil {
					if portCap.avail(dispatch) {
						portCap.book(dispatch)
					} else {
						predicted = false
						stats.PortStarved++
					}
				}
			}
			if predicted {
				correct = predVal == e.NewDest
				stats.Predicted++
				if correct {
					stats.PredictCorrect++
				} else {
					stats.PredictWrong++
				}
			}
		}

		// ---- Source operands, first-use detection, selective taint.
		srcReady := dispatch + 1
		var holdUntil int64
		for _, r := range srcs {
			if r.IsZero() {
				continue
			}
			if t := regReady[r]; t > srcReady {
				srcReady = t
			}
			if cfg.Recovery == RecoverSelective && specUntil[r] > holdUntil {
				holdUntil = specUntil[r]
			}
			if p := regPending[r]; p != nil && !p.useSeen {
				p.useSeen = true
			}
		}

		// Reissue: every instruction dispatched after a pending
		// prediction's first use stays queued until it verifies.
		if cfg.Recovery == RecoverReissue {
			live := activePreds[:0]
			for _, p := range activePreds {
				if p.verifyAt > dispatch {
					live = append(live, p)
					if p.useSeen && p.verifyAt > holdUntil {
						holdUntil = p.verifyAt
					}
				}
			}
			activePreds = live
		}

		// ---- Issue: earliest cycle with a free unit and issue slot.
		t := srcReady
		if t < dispatch+1 {
			t = dispatch + 1
		}
		isMem := cls == isa.ClassLoad || cls == isa.ClassStore
		var unit *capRing
		switch cls {
		case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			unit = fpCap
		default:
			unit = intCap
		}
		for {
			if issueCap.avail(t) && unit.avail(t) && (!isMem || lsCap.avail(t)) {
				break
			}
			t++
		}
		issueCap.book(t)
		unit.book(t)
		if isMem {
			lsCap.book(t)
		}
		issueAt := t

		// ---- Completion.
		doneAt := issueAt + int64(cls.Latency())
		if cls == isa.ClassLoad || cls == isa.ClassStore {
			lat := s.hier.AccessDataAt(e.EA, issueAt)
			if s.faults != nil {
				lat = s.faults.MemLatency(e.EA, issueAt, lat)
			}
			doneAt += int64(lat)
			if cls == isa.ClassLoad {
				stats.Loads++
			} else {
				stats.Stores++
			}
		}

		// ---- Prediction verification and destination readiness.
		// taintOut is the speculation horizon this instruction's result
		// carries to its consumers (selective reissue): inherited source
		// taints plus, when predicted, its own verification time. The
		// predicted instruction itself is NOT held in the queue — it
		// cannot reissue; only its dependents are.
		var verifyAt int64
		taintOut := holdUntil
		if e.WroteRd {
			if predicted {
				verifyAt = doneAt
				if predReady > verifyAt {
					verifyAt = predReady
				}
				pp := &pendingPred{verifyAt: verifyAt, doneAt: doneAt, wrong: !correct}
				regPending[in.Rd] = pp
				if cfg.Recovery == RecoverReissue {
					activePreds = append(activePreds, pp)
				}
				switch {
				case correct:
					// Consumers read the prior register value.
					rr := predReady
					if doneAt < rr {
						rr = doneAt
					}
					regReady[in.Rd] = rr
				case cfg.Recovery == RecoverRefetch:
					regReady[in.Rd] = doneAt
				default:
					// Dependents reissue one cycle after the real value.
					regReady[in.Rd] = doneAt + 1
				}
				if cfg.Recovery == RecoverSelective && verifyAt > taintOut {
					taintOut = verifyAt
				}
			} else {
				regReady[in.Rd] = doneAt
				regPending[in.Rd] = nil
			}
			if cfg.Recovery == RecoverSelective {
				specUntil[in.Rd] = taintOut
			}
			if e.NewDest == lvLast[idx] {
				if doneAt < lvReady[idx] {
					lvReady[idx] = doneAt
				}
			} else {
				lvReady[idx] = doneAt
				lvLast[idx] = e.NewDest
			}
		}

		// ---- Queue slot release.
		qFree := issueAt + 1
		if holdUntil > qFree {
			qFree = holdUntil
		}
		if useFPQ {
			fpIQ[fpN%uint64(cfg.FPIQ)] = qFree
			fpN++
		} else {
			intIQ[intN%uint64(cfg.IntIQ)] = qFree
			intN++
		}

		// ---- Control transfers: predictor consultation and redirects.
		if e.IsCTI {
			stats.Branches++
			s.handleCTI(e, idx, myFetch, doneAt, &minFetch, &fetchBlocks)
		}

		// ---- Commit: in order, after completion and verification.
		commitAt := doneAt + 1
		if predicted && verifyAt+1 > commitAt {
			commitAt = verifyAt + 1
		}
		if commitAt < lastCommit {
			commitAt = lastCommit
		}
		for !commitCap.avail(commitAt) {
			commitAt++
		}
		commitCap.book(commitAt)
		if wd > 0 && commitAt-lastCommit > wd {
			finalize()
			return stats, &simerr.SimError{
				Stage: "pipeline", Workload: prog.Name,
				PC: e.PC, Cycle: commitAt, HasPC: true, HasCycle: true,
				Err: fmt.Errorf("no commit for %d cycles (watchdog %d): %w",
					commitAt-lastCommit, wd, simerr.ErrNoProgress),
			}
		}
		lastCommit = commitAt
		window[winN%uint64(cfg.Window)] = commitAt
		winN++
		if commitAt > lastCycle {
			lastCycle = commitAt
		}
		stats.Committed++
		if m != nil {
			m.observe(commitAt-myFetch, issueAt-dispatch, commitAt-dispatch)
			if stats.Committed&(flushEvery-1) == 0 {
				m.flush(&stats)
			}
		}

		// ---- Train the value predictor (in program order).
		if e.WroteRd {
			pred.Commit(idx, in, predVal, e.NewDest)
		}

		if s.tracer != nil {
			s.tracer(TraceRecord{
				Index:     idx,
				FetchAt:   myFetch,
				Dispatch:  dispatch,
				IssueAt:   issueAt,
				DoneAt:    doneAt,
				CommitAt:  commitAt,
				Predicted: predicted,
				Correct:   correct,
			})
		}
		if emitEvents {
			ev = obs.Event{
				Index:     idx,
				Fetch:     myFetch,
				Dispatch:  dispatch,
				Issue:     issueAt,
				Done:      doneAt,
				Commit:    commitAt,
				Predicted: predicted,
				Correct:   correct,
			}
			s.obs.Emit(&ev)
		}

		if in.Op == isa.HALT {
			break
		}
	}

	finalize()
	return stats, nil
}

// handleCTI models the front end's interaction with one control transfer:
// direction prediction, target prediction, taken-branch fetch breaks, and
// redirect penalties for mispredictions.
func (s *Sim) handleCTI(e emu.Exec, idx int, myFetch, doneAt int64, minFetch *int64, fetchBlocks *int) {
	cfg := s.cfg
	redirect := func(at int64) {
		if at > *minFetch {
			*minFetch = at
		}
	}
	takenBreak := func() {
		*fetchBlocks++
		if *fetchBlocks >= cfg.MaxFetchBlocks {
			// The fetch unit cannot follow another taken branch this
			// cycle; fetch resumes next cycle.
			redirect(myFetch + 1)
		}
	}
	switch {
	case isa.IsCondBranch(e.Inst.Op):
		predTaken := s.bp.PredictCond(idx)
		dirCorrect := s.bp.UpdateCond(idx, e.Taken, predTaken)
		if !dirCorrect {
			redirect(doneAt + int64(cfg.MispredPenalty))
			return
		}
		if !e.Taken {
			return // correctly predicted not-taken: no fetch break
		}
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			// Direction known taken but target unknown in the BTB: the
			// target is static, so decode redirects (misfetch).
			redirect(myFetch + int64(cfg.MisfetchPenalty))
		}
	case e.Inst.Op == isa.BR:
		if e.Inst.Rd == isa.RRA {
			s.bp.OnFetchCall(e.Index + 1)
		}
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			redirect(myFetch + int64(cfg.MisfetchPenalty))
		}
	case e.Inst.Op == isa.JSR:
		s.bp.OnFetchCall(e.Index + 1)
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			// Register-indirect target: resolved at execute.
			redirect(doneAt + int64(cfg.MispredPenalty))
		}
	case e.Inst.Op == isa.RET:
		tgt, ok := s.bp.PredictTarget(e.Inst.Op, idx)
		s.bp.OnFetchReturn()
		if s.bp.UpdateTarget(e.Inst.Op, idx, e.Next, tgt, ok) {
			takenBreak()
		} else {
			redirect(doneAt + int64(cfg.MispredPenalty))
		}
	}
}
