package pipeline_test

import (
	"testing"

	"rvpsim/internal/core"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/progtest"
)

// TestTimingInvariants drives random programs through the simulator under
// several predictors and checks per-instruction event ordering via the
// tracer: fetch <= dispatch < issue < done < commit, commit order is
// monotone, and the prediction accounting is internally consistent.
func TestTimingInvariants(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	preds := []func() core.Predictor{
		func() core.Predictor { return core.NoPredictor{} },
		func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) },
		func() core.Predictor { return core.MustLVP(core.DefaultLVPConfig(), "lvp") },
	}
	for seed := 1; seed <= seeds; seed++ {
		p := progtest.Random(uint64(seed))
		for pi, mk := range preds {
			for _, rec := range []pipeline.Recovery{pipeline.RecoverRefetch, pipeline.RecoverReissue, pipeline.RecoverSelective} {
				cfg := pipeline.BaselineConfig()
				cfg.Recovery = rec
				sim := pipeline.MustNew(cfg)
				var lastCommit int64
				var traced, predicted, correct uint64
				bad := false
				sim.SetTracer(func(tr pipeline.TraceRecord) {
					traced++
					if tr.Predicted {
						predicted++
						if tr.Correct {
							correct++
						}
					}
					if !(tr.FetchAt <= tr.Dispatch && tr.Dispatch < tr.IssueAt &&
						tr.IssueAt < tr.DoneAt && tr.DoneAt < tr.CommitAt) {
						if !bad {
							t.Errorf("seed %d pred %d %v: event order violated: %+v", seed, pi, rec, tr)
						}
						bad = true
					}
					if tr.CommitAt < lastCommit {
						if !bad {
							t.Errorf("seed %d pred %d %v: commit order regressed: %d after %d",
								seed, pi, rec, tr.CommitAt, lastCommit)
						}
						bad = true
					}
					lastCommit = tr.CommitAt
				})
				st, err := sim.Run(p, mk(), 20_000)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if traced != st.Committed {
					t.Errorf("seed %d: traced %d != committed %d", seed, traced, st.Committed)
				}
				if predicted != st.Predicted || correct != st.PredictCorrect {
					t.Errorf("seed %d: trace prediction counts disagree with stats", seed)
				}
				if st.PredictCorrect+st.PredictWrong != st.Predicted {
					t.Errorf("seed %d: correct+wrong != predicted", seed)
				}
				if st.IPC() > float64(cfg.IssueWidth) {
					t.Errorf("seed %d: IPC %.2f exceeds issue width", seed, st.IPC())
				}
			}
		}
	}
}

// checkSink records events for TestObserverInvariants.
type checkSink struct {
	events []obs.Event
}

func (s *checkSink) Emit(e *obs.Event) error {
	s.events = append(s.events, *e)
	return nil
}

func (*checkSink) Close() error { return nil }

// TestObserverInvariants routes runs through the observability layer and
// checks the same ordering guarantees hold at the sink boundary: events
// arrive in commit order with increasing sequence numbers, stage
// timestamps are ordered, and both the event count and the prediction
// accounting reconcile with the registry snapshot and the run Stats.
func TestObserverInvariants(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := 1; seed <= seeds; seed++ {
		p := progtest.Random(uint64(seed))
		sim := pipeline.MustNew(pipeline.BaselineConfig())
		o := obs.NewObserver()
		sink := &checkSink{}
		o.AddSink(sink)
		sim.SetObserver(o)
		st, err := sim.Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Close(); err != nil {
			t.Fatal(err)
		}

		var lastCommit int64
		var predicted, correct uint64
		for i, e := range sink.events {
			if e.Seq != uint64(i) {
				t.Fatalf("seed %d: event %d has seq %d", seed, i, e.Seq)
			}
			if !(e.Fetch <= e.Dispatch && e.Dispatch < e.Issue && e.Issue < e.Done && e.Done < e.Commit) {
				t.Fatalf("seed %d: event %d stage order violated: %+v", seed, i, e)
			}
			if e.Commit < lastCommit {
				t.Fatalf("seed %d: event %d commit %d regressed below %d", seed, i, e.Commit, lastCommit)
			}
			lastCommit = e.Commit
			if e.Predicted {
				predicted++
				if e.Correct {
					correct++
				}
			}
		}
		if uint64(len(sink.events)) != st.Committed {
			t.Errorf("seed %d: %d events != %d committed", seed, len(sink.events), st.Committed)
		}
		if predicted != st.Predicted || correct != st.PredictCorrect {
			t.Errorf("seed %d: event prediction counts (%d/%d) disagree with stats (%d/%d)",
				seed, predicted, correct, st.Predicted, st.PredictCorrect)
		}

		// The registry snapshot must agree with the run Stats: the sim
		// flushes its final deltas at end of run, so a fresh registry
		// holds exactly one run's totals.
		snap := o.Registry().Snapshot()
		recon := []struct {
			metric string
			want   int64
		}{
			{"rvpsim_committed_total", int64(st.Committed)},
			{"rvpsim_cycles_total", st.Cycles},
			{"rvpsim_loads_total", int64(st.Loads)},
			{"rvpsim_stores_total", int64(st.Stores)},
			{"rvpsim_vp_predicted_total", int64(st.Predicted)},
			{"rvpsim_vp_correct_total", int64(st.PredictCorrect)},
			{"rvpsim_vp_wrong_total", int64(st.PredictWrong)},
			{"rvpsim_cond_mispredict_total", int64(st.CondMispredict)},
			{"rvpsim_stall_window_cycles_total", st.StallWindow},
		}
		for _, c := range recon {
			if got := snap.Counters[c.metric]; got != c.want {
				t.Errorf("seed %d: %s = %d, registry disagrees with Stats %d", seed, c.metric, got, c.want)
			}
		}
		for _, hname := range []string{"rvpsim_inst_latency_cycles", "rvpsim_issue_wait_cycles", "rvpsim_window_residency_cycles"} {
			h, ok := snap.Histograms[hname]
			if !ok {
				t.Errorf("seed %d: histogram %s missing from snapshot", seed, hname)
				continue
			}
			if h.Count != int64(st.Committed) {
				t.Errorf("seed %d: %s count %d != committed %d", seed, hname, h.Count, st.Committed)
			}
		}
	}
}

// TestObserverMatchesUnobservedRun: attaching an observer must not
// change timing or architectural results.
func TestObserverMatchesUnobservedRun(t *testing.T) {
	for seed := 1; seed <= 5; seed++ {
		p := progtest.Random(uint64(seed))
		plain, err := pipeline.MustNew(pipeline.BaselineConfig()).
			Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		sim := pipeline.MustNew(pipeline.BaselineConfig())
		sim.SetObserver(obs.NewObserver())
		observed, err := sim.Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if plain != observed {
			t.Errorf("seed %d: observed run stats differ from plain run:\n  plain:    %v\n  observed: %v",
				seed, plain, observed)
		}
	}
}

// TestCyclesMonotoneInBudget: simulating more instructions never takes
// fewer cycles, and prefix behaviour is consistent.
func TestCyclesMonotoneInBudget(t *testing.T) {
	for seed := 1; seed <= 10; seed++ {
		p := progtest.Random(uint64(seed))
		var prev int64
		for _, budget := range []uint64{2_000, 8_000, 20_000} {
			sim := pipeline.MustNew(pipeline.BaselineConfig())
			st, err := sim.Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
			if err != nil {
				t.Fatal(err)
			}
			if st.Cycles < prev {
				t.Errorf("seed %d: cycles decreased with larger budget: %d < %d", seed, st.Cycles, prev)
			}
			prev = st.Cycles
		}
	}
}

// TestPredictionNeverChangesArchitecture: the oracle-driven model must
// commit the same instruction stream regardless of the predictor (value
// prediction is performance-speculation only).
func TestPredictionNeverChangesArchitecture(t *testing.T) {
	for seed := 1; seed <= 10; seed++ {
		p := progtest.Random(uint64(seed))
		var idxNo, idxRVP []int
		simA := pipeline.MustNew(pipeline.BaselineConfig())
		simA.SetTracer(func(tr pipeline.TraceRecord) { idxNo = append(idxNo, tr.Index) })
		if _, err := simA.Run(p, core.NoPredictor{}, 5_000); err != nil {
			t.Fatal(err)
		}
		simB := pipeline.MustNew(pipeline.BaselineConfig())
		simB.SetTracer(func(tr pipeline.TraceRecord) { idxRVP = append(idxRVP, tr.Index) })
		if _, err := simB.Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), 5_000); err != nil {
			t.Fatal(err)
		}
		if len(idxNo) != len(idxRVP) {
			t.Fatalf("seed %d: committed stream lengths differ", seed)
		}
		for i := range idxNo {
			if idxNo[i] != idxRVP[i] {
				t.Fatalf("seed %d: committed stream diverged at %d", seed, i)
			}
		}
	}
}

// TestWiderMachineNeverSlower: the 16-wide machine is never slower than
// the 8-wide on the same program and predictor.
func TestWiderMachineNeverSlower(t *testing.T) {
	for seed := 1; seed <= 8; seed++ {
		p := progtest.Random(uint64(seed))
		a, err := pipeline.MustNew(pipeline.BaselineConfig()).Run(p, core.NoPredictor{}, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pipeline.MustNew(pipeline.AggressiveConfig()).Run(p, core.NoPredictor{}, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cycles > a.Cycles {
			t.Errorf("seed %d: 16-wide slower (%d) than 8-wide (%d)", seed, b.Cycles, a.Cycles)
		}
	}
}
