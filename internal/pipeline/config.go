// Package pipeline implements the execution-driven out-of-order timing
// simulator: an 8-wide (or 16-wide), 9-stage machine with the paper's
// Table 1 resources, gshare branch prediction, the register-map-based RVP
// mechanism, and the three value-misprediction recovery schemes (refetch,
// reissue, selective reissue).
//
// The model is oracle-driven: the functional emulator supplies the
// committed instruction stream, and the timing model tracks per-result
// ready cycles, functional-unit and issue-bandwidth contention, IQ and
// in-flight-window occupancy, in-order dispatch and commit, and front-end
// redirects. Wrong-path instructions are charged as fetch stall (redirect
// latency plus lost fetch slots) rather than emulated.
package pipeline

import (
	"fmt"

	"rvpsim/internal/bpred"
	"rvpsim/internal/mem"
	"rvpsim/internal/simerr"
)

// Recovery selects the value-misprediction recovery scheme (Section 4.3).
type Recovery uint8

// Recovery schemes.
const (
	// RecoverRefetch treats a value mispredict like a branch mispredict:
	// everything from the first use onward is squashed and refetched.
	RecoverRefetch Recovery = iota
	// RecoverReissue keeps every instruction after the first use in the
	// IQ until the prediction resolves; dependents reissue with a one
	// cycle penalty on a mispredict.
	RecoverReissue
	// RecoverSelective keeps only (transitive) dependents of the
	// predicted value in the IQ; same one-cycle reissue penalty.
	RecoverSelective
)

func (r Recovery) String() string {
	switch r {
	case RecoverRefetch:
		return "refetch"
	case RecoverReissue:
		return "reissue"
	case RecoverSelective:
		return "selective"
	}
	return fmt.Sprintf("recovery(%d)", uint8(r))
}

// Config describes the simulated machine.
type Config struct {
	// Front end.
	FetchWidth      int // instructions fetched per cycle
	MaxFetchBlocks  int // basic blocks (taken branches followed) per cycle
	FrontLatency    int // fetch-to-dispatch stages
	MispredPenalty  int // branch / refetch redirect penalty, cycles
	MisfetchPenalty int // decode-time redirect (BTB miss, static target)

	// Window and queues.
	DispatchWidth int
	IntIQ         int
	FPIQ          int
	Window        int // in-flight instructions (renaming registers / ROB)

	// Issue and functional units.
	IssueWidth  int
	IntALUs     int // integer units (ClassIntALU/Mul/Div share these)
	LoadStore   int // of the integer units, how many can do loads/stores
	FPUnits     int
	CommitWidth int

	// Value prediction plumbing.
	Recovery Recovery
	// PredictPorts bounds non-load RVP predictions per cycle (the extra
	// register read ports of Section 4.2). 0 leaves the limit unmodelled,
	// as the paper's own simulations do (it argues one or two ports would
	// suffice from the observed prediction rate); set it explicitly for
	// the port-pressure ablation.
	PredictPorts int

	// WatchdogCycles bounds the simulated-cycle gap between consecutive
	// commits: if no instruction commits for more than this many cycles,
	// the run aborts with an error wrapping simerr.ErrNoProgress instead
	// of spinning in a livelocked recovery/IQ state. 0 disables the
	// watchdog.
	WatchdogCycles int

	// Substrate configuration.
	Mem   mem.HierarchyConfig
	Bpred bpred.Config
}

// BaselineConfig returns the paper's Table 1 next-generation 8-issue
// processor: 32-entry int and FP instruction queues, 6 integer units (4
// with load/store ports), 3 FP units, 9-stage pipeline with a 7-cycle
// misprediction penalty, 8-wide fetch of one basic block per cycle.
func BaselineConfig() Config {
	return Config{
		FetchWidth:      8,
		MaxFetchBlocks:  1,
		FrontLatency:    4, // fetch..dispatch stages of the 9-stage pipe
		MispredPenalty:  7,
		MisfetchPenalty: 2,
		DispatchWidth:   8,
		IntIQ:           32,
		FPIQ:            32,
		Window:          128,
		IssueWidth:      8,
		IntALUs:         6,
		LoadStore:       4,
		FPUnits:         3,
		CommitWidth:     8,
		Recovery:        RecoverSelective,
		PredictPorts:    0,
		Mem:             mem.DefaultHierarchyConfig(),
		Bpred:           bpred.DefaultConfig(),
	}
}

// AggressiveConfig returns the Section 7.4 16-wide machine: double the
// queues, functional units, renaming registers and fetch bandwidth, and a
// front end that can fetch up to three basic blocks per cycle.
func AggressiveConfig() Config {
	c := BaselineConfig()
	c.FetchWidth = 16
	c.MaxFetchBlocks = 3
	c.DispatchWidth = 16
	c.IntIQ = 64
	c.FPIQ = 64
	c.Window = 256
	c.IssueWidth = 16
	c.IntALUs = 12
	c.LoadStore = 8
	c.FPUnits = 6
	c.CommitWidth = 16
	return c
}

// Validate checks the configuration for structural sanity.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0, c.DispatchWidth <= 0, c.IssueWidth <= 0, c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: nonpositive width: %w", simerr.ErrConfig)
	case c.IntIQ <= 0 || c.FPIQ <= 0 || c.Window <= 0:
		return fmt.Errorf("pipeline: nonpositive queue size: %w", simerr.ErrConfig)
	case c.IntALUs <= 0 || c.FPUnits <= 0 || c.LoadStore <= 0:
		return fmt.Errorf("pipeline: nonpositive unit count: %w", simerr.ErrConfig)
	case c.DispatchWidth > 65535, c.IssueWidth > 65535, c.CommitWidth > 65535,
		c.IntALUs > 65535, c.FPUnits > 65535, c.LoadStore > 65535, c.PredictPorts > 65535:
		// Capacity bookkeeping packs per-cycle counts into 16 bits.
		return fmt.Errorf("pipeline: width or unit count above 65535: %w", simerr.ErrConfig)
	case c.LoadStore > c.IntALUs:
		return fmt.Errorf("pipeline: more load/store ports than integer units: %w", simerr.ErrConfig)
	case c.MaxFetchBlocks <= 0:
		return fmt.Errorf("pipeline: MaxFetchBlocks must be positive: %w", simerr.ErrConfig)
	case c.FrontLatency < 1:
		return fmt.Errorf("pipeline: FrontLatency must be at least 1: %w", simerr.ErrConfig)
	case c.MispredPenalty < 1:
		return fmt.Errorf("pipeline: MispredPenalty must be at least 1: %w", simerr.ErrConfig)
	case c.WatchdogCycles < 0:
		return fmt.Errorf("pipeline: WatchdogCycles must not be negative: %w", simerr.ErrConfig)
	}
	return c.Mem.Validate()
}
