package pipeline_test

// Tests for warmed-state forking (warm.go) and recycled-runState
// determinism (sim.go newRunState/resetRunState). The contract under
// test: a run started from a forked WarmState commits the byte-identical
// architectural instruction/value stream as the tail of a cold run past
// the same boundary, any number of concurrent forks agree, and a Sim
// reused across runs is indistinguishable from a fresh one.

import (
	"sync"
	"testing"

	"rvpsim/internal/core"
	"rvpsim/internal/isa"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/workloads"
)

// archRec is the architectural slice of one committed instruction —
// timing fields are deliberately excluded (a warmed run starts with cold
// caches where the cold run's tail had warm ones; architecture, not
// timing, is what forking preserves).
type archRec struct {
	Index int
	PC    uint64
	Wrote bool
	Rd    isa.Reg
	Value uint64
}

func archTracer(out *[]archRec) pipeline.Tracer {
	return func(tr pipeline.TraceRecord) {
		*out = append(*out, archRec{Index: tr.Index, PC: tr.PC, Wrote: tr.WroteRd, Rd: tr.Rd, Value: tr.Value})
	}
}

func diffStreams(t *testing.T, label string, want, got []archRec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: committed %d instructions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: commit %d diverges: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestWarmupForkEquivalence is the tentpole determinism guarantee: for
// each predictor, a run forked from a shared WarmState commits exactly
// the stream a cold run commits after the same number of instructions.
func TestWarmupForkEquivalence(t *testing.T) {
	const (
		warmN    = 40_000
		measureN = 60_000
	)
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	warm, err := pipeline.Warmup(prog, warmN)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Insts != warmN {
		t.Fatalf("warmup executed %d insts, want %d", warm.Insts, warmN)
	}

	preds := map[string]func() core.Predictor{
		"none": func() core.Predictor { return core.NoPredictor{} },
		"drvp": func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) },
		"lvp":  func() core.Predictor { return core.MustLVP(core.DefaultLVPConfig(), "lvp") },
	}
	for name, mk := range preds {
		t.Run(name, func(t *testing.T) {
			// Cold reference: run through warmup + measured phase in one
			// go, keep only the tail of the stream.
			var cold []archRec
			coldSim := pipeline.MustNew(cfg)
			coldSim.SetTracer(archTracer(&cold))
			coldStats, err := coldSim.Run(prog, mk(), warmN+measureN)
			if err != nil {
				t.Fatal(err)
			}
			if coldStats.Committed != warmN+measureN {
				t.Fatalf("cold run committed %d, want %d", coldStats.Committed, warmN+measureN)
			}

			var warmed []archRec
			warmSim := pipeline.MustNew(cfg)
			warmSim.SetTracer(archTracer(&warmed))
			warmStats, err := warmSim.RunWarmedContext(t.Context(), warm, prog, mk(), measureN)
			if err != nil {
				t.Fatal(err)
			}
			if warmStats.Committed != measureN {
				t.Fatalf("warmed run committed %d, want %d (measured phase only)", warmStats.Committed, measureN)
			}
			diffStreams(t, "warmed vs cold tail", cold[warmN:], warmed)
		})
	}
}

// TestWarmupConcurrentForks forks one WarmState from several goroutines
// at once (run under -race in CI): every fork must commit the identical
// stream, and none may corrupt the shared image for the others.
func TestWarmupConcurrentForks(t *testing.T) {
	const (
		warmN    = 20_000
		measureN = 30_000
		forks    = 4
	)
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	warm, err := pipeline.Warmup(prog, warmN)
	if err != nil {
		t.Fatal(err)
	}

	streams := make([][]archRec, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sim := pipeline.MustNew(cfg)
			sim.SetTracer(archTracer(&streams[i]))
			if _, err := sim.RunWarmedContext(t.Context(), warm, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), measureN); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < forks; i++ {
		diffStreams(t, "fork disagreement", streams[0], streams[i])
	}
}

// TestWarmupZeroIsColdRun: a WarmState captured at instruction 0 must be
// a cold run in every observable respect, and a nil WarmState must
// degrade to RunContext.
func TestWarmupZeroIsColdRun(t *testing.T) {
	const budget = 50_000
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()

	var cold []archRec
	coldSim := pipeline.MustNew(cfg)
	coldSim.SetTracer(archTracer(&cold))
	coldStats, err := coldSim.Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := pipeline.Warmup(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Insts != 0 {
		t.Fatalf("zero warmup executed %d insts", warm.Insts)
	}
	var warmed []archRec
	warmSim := pipeline.MustNew(cfg)
	warmSim.SetTracer(archTracer(&warmed))
	warmStats, err := warmSim.RunWarmedContext(t.Context(), warm, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats != coldStats {
		t.Fatalf("zero-warmup stats diverge from cold run:\n got %+v\nwant %+v", warmStats, coldStats)
	}
	diffStreams(t, "zero-warmup vs cold", cold, warmed)

	var viaNil []archRec
	nilSim := pipeline.MustNew(cfg)
	nilSim.SetTracer(archTracer(&viaNil))
	nilStats, err := nilSim.RunWarmedContext(t.Context(), nil, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}
	if nilStats != coldStats {
		t.Fatalf("nil-warm stats diverge from cold run:\n got %+v\nwant %+v", nilStats, coldStats)
	}
	diffStreams(t, "nil-warm vs cold", cold, viaNil)
}

// TestWarmupForkValidation: forking a WarmState onto the wrong program
// must fail loudly, not silently mix state.
func TestWarmupForkValidation(t *testing.T) {
	li, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	other, err := workloads.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pipeline.Warmup(li, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Fork(other); err == nil {
		t.Fatal("Fork accepted a different program")
	}
	if _, err := warm.Fork(nil); err == nil {
		t.Fatal("Fork accepted a nil program")
	}
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	if _, err := sim.RunWarmedContext(t.Context(), warm, other, core.NoPredictor{}, 1_000); err == nil {
		t.Fatal("RunWarmedContext accepted a mismatched warm state")
	}
}

// TestWarmedRunCheckpointResume: a warmed run stays checkpointable — a
// snapshot taken mid-measured-phase resumes into a fresh simulator and
// finishes with the same stream tail and stats as the uninterrupted
// warmed run.
func TestWarmedRunCheckpointResume(t *testing.T) {
	const (
		warmN    = 20_000
		ckptAt   = 10_000
		measureN = 30_000
	)
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	warm, err := pipeline.Warmup(prog, warmN)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted warmed reference.
	var ref []archRec
	refSim := pipeline.MustNew(cfg)
	refSim.SetTracer(archTracer(&ref))
	refStats, err := refSim.RunWarmedContext(t.Context(), warm, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), measureN)
	if err != nil {
		t.Fatal(err)
	}

	// Same run, snapshotted at ckptAt commits.
	var head []archRec
	var snap *pipeline.Snapshot
	runSim := pipeline.MustNew(cfg)
	runSim.SetTracer(archTracer(&head))
	runSim.SetCheckpoint(ckptAt, func(s *pipeline.Snapshot) error {
		if snap == nil {
			snap = s
		}
		return nil
	})
	if _, err := runSim.RunWarmedContext(t.Context(), warm, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), measureN); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("checkpoint callback never fired during warmed run")
	}

	var tail []archRec
	resSim := pipeline.MustNew(cfg)
	resSim.SetTracer(archTracer(&tail))
	resStats, err := resSim.ResumeContext(t.Context(), snap, prog, core.MustDynamicRVP(core.DefaultCounterConfig()), measureN)
	if err != nil {
		t.Fatal(err)
	}
	if resStats.Committed != refStats.Committed {
		t.Fatalf("resumed warmed run committed %d, want %d", resStats.Committed, refStats.Committed)
	}
	diffStreams(t, "resumed tail vs reference", ref[int(snap.Stats.Committed):], tail)
}

// TestSimReuseDeterminism proves the recycled-runState path: one Sim
// driven through a sweep-shaped sequence of runs (different predictors,
// different programs, a warmed run in the middle) commits, on every run,
// the identical stream a fresh Sim commits for the same cell.
func TestSimReuseDeterminism(t *testing.T) {
	const budget = 30_000
	li, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	goProg, err := workloads.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pipeline.Warmup(li, 10_000)
	if err != nil {
		t.Fatal(err)
	}

	cells := []struct {
		name string
		run  func(sim *pipeline.Sim, tr pipeline.Tracer) (pipeline.Stats, error)
	}{
		{"li/drvp", func(sim *pipeline.Sim, tr pipeline.Tracer) (pipeline.Stats, error) {
			sim.SetTracer(tr)
			return sim.Run(li, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
		}},
		{"go/none", func(sim *pipeline.Sim, tr pipeline.Tracer) (pipeline.Stats, error) {
			sim.SetTracer(tr)
			return sim.Run(goProg, core.NoPredictor{}, budget)
		}},
		{"li/lvp+warm", func(sim *pipeline.Sim, tr pipeline.Tracer) (pipeline.Stats, error) {
			sim.SetTracer(tr)
			return sim.RunWarmedContext(t.Context(), warm, li, core.MustLVP(core.DefaultLVPConfig(), "lvp"), budget)
		}},
		{"li/drvp-again", func(sim *pipeline.Sim, tr pipeline.Tracer) (pipeline.Stats, error) {
			sim.SetTracer(tr)
			return sim.Run(li, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
		}},
	}

	reused := pipeline.MustNew(pipeline.BaselineConfig())
	for _, c := range cells {
		var fresh, recycled []archRec
		fs := pipeline.MustNew(pipeline.BaselineConfig())
		wantStats, err := c.run(fs, archTracer(&fresh))
		if err != nil {
			t.Fatalf("%s: fresh: %v", c.name, err)
		}
		gotStats, err := c.run(reused, archTracer(&recycled))
		if err != nil {
			t.Fatalf("%s: reused: %v", c.name, err)
		}
		if gotStats != wantStats {
			t.Fatalf("%s: reused stats diverge:\n got %+v\nwant %+v", c.name, gotStats, wantStats)
		}
		diffStreams(t, c.name, fresh, recycled)
	}
}
