package pipeline_test

import (
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/program"
)

func assemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// loopProg is a simple counted loop with a dependent chain.
const loopProg = `
.text
main:
        li      r1, 2000
        lda     r2, table
        clr     r4
loop:
        ldq     r3, 0(r2)
        add     r4, r4, r3
        addi    r2, r2, 8
        andi    r2, r2, 0x1ffff8
        subi    r1, r1, 1
        bne     r1, loop
        halt
.data
.org 0x100000
table:  .quad 5, 5, 5, 5, 5, 5, 5, 5
`

// reuseProg loads the same value into the same register over and over:
// perfect register-value reuse, with a long dependence chain hanging off
// the load so prediction matters.
const reuseProg = `
.text
main:
        li      r1, 5000
        lda     r2, table
loop:
        ldq     r3, 0(r2)       ; always loads 7 into r3 (same-reg reuse)
        mul     r4, r3, r3
        mul     r5, r4, r3
        mul     r6, r5, r4
        add     r7, r6, r5
        subi    r1, r1, 1
        bne     r1, loop
        halt
.data
.org 0x100000
table:  .quad 7
`

// wrongProg has a load whose value changes every iteration but whose
// confidence warms up on a long constant prefix, guaranteeing
// mispredictions when the pattern shifts.
const wrongProg = `
.text
main:
        li      r1, 400
        lda     r2, table
        clr     r8
loop:
        ldq     r3, 0(r2)
        addi    r3, r3, 3       ; overwrite quickly: r3 value changes
        stq     r3, 0(r2)       ; store back: next load differs
        mul     r4, r3, r3
        add     r8, r8, r4
        subi    r1, r1, 1
        bne     r1, loop
        halt
.data
.org 0x100000
table:  .quad 1
`

func run(t *testing.T, prog *program.Program, cfg pipeline.Config, pred core.Predictor) pipeline.Stats {
	t.Helper()
	sim := pipeline.MustNew(cfg)
	st, err := sim.Run(prog, pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBasicIPCSane(t *testing.T) {
	prog := assemble(t, loopProg)
	st := run(t, prog, pipeline.BaselineConfig(), core.NoPredictor{})
	if st.Committed == 0 || st.Cycles == 0 {
		t.Fatalf("empty run: %+v", st)
	}
	ipc := st.IPC()
	if ipc <= 0.1 || ipc > 8 {
		t.Errorf("IPC = %.3f out of sane range", ipc)
	}
	if st.Loads == 0 || st.Branches == 0 {
		t.Error("instruction mix not counted")
	}
}

func TestDeterminism(t *testing.T) {
	prog := assemble(t, loopProg)
	a := run(t, prog, pipeline.BaselineConfig(), core.MustDynamicRVP(core.DefaultCounterConfig()))
	b := run(t, prog, pipeline.BaselineConfig(), core.MustDynamicRVP(core.DefaultCounterConfig()))
	if a != b {
		t.Errorf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestRVPSpeedsUpReusefulCode(t *testing.T) {
	prog := assemble(t, reuseProg)
	base := run(t, prog, pipeline.BaselineConfig(), core.NoPredictor{})
	rvp := run(t, prog, pipeline.BaselineConfig(), core.MustDynamicRVP(core.DefaultCounterConfig()))
	if rvp.Predicted == 0 {
		t.Fatal("no predictions made on perfectly reuseful code")
	}
	if acc := rvp.Accuracy(); acc < 0.99 {
		t.Errorf("accuracy = %.3f, want ~1.0", acc)
	}
	if rvp.Cycles >= base.Cycles {
		t.Errorf("RVP did not speed up: base %d cycles, rvp %d", base.Cycles, rvp.Cycles)
	}
}

func TestMispredictionsCost(t *testing.T) {
	prog := assemble(t, wrongProg)
	// With drvp, the changing value keeps resetting confidence, so there
	// should be few or no predictions and minimal slowdown.
	base := run(t, prog, pipeline.BaselineConfig(), core.NoPredictor{})
	rvp := run(t, prog, pipeline.BaselineConfig(), core.MustDynamicRVP(core.DefaultCounterConfig()))
	slowdown := float64(rvp.Cycles) / float64(base.Cycles)
	if slowdown > 1.05 {
		t.Errorf("confidence filter failed: slowdown %.3f", slowdown)
	}
}

func TestStaticWrongPredictionsHurtMoreUnderRefetch(t *testing.T) {
	prog := assemble(t, wrongProg)
	// Statically mark the load (index of ldq in wrongProg = 3).
	var loadIdx int
	for i, in := range prog.Insts {
		if in.Op.String() == "ldq" {
			loadIdx = i
			break
		}
	}
	marked := map[int]bool{loadIdx: true}
	mk := func() core.Predictor { return core.NewStaticRVP("srvp", marked, nil) }

	cfgRefetch := pipeline.BaselineConfig()
	cfgRefetch.Recovery = pipeline.RecoverRefetch
	cfgSel := pipeline.BaselineConfig()
	cfgSel.Recovery = pipeline.RecoverSelective

	ref := run(t, prog, cfgRefetch, mk())
	sel := run(t, prog, cfgSel, mk())
	if ref.PredictWrong == 0 {
		t.Fatal("expected wrong predictions")
	}
	if ref.Refetches == 0 {
		t.Error("refetch recovery recorded no squashes")
	}
	if ref.Cycles <= sel.Cycles {
		t.Errorf("refetch (%d cycles) should cost more than selective (%d) on always-wrong predictions",
			ref.Cycles, sel.Cycles)
	}
}

func TestCorrectPredictionsQueuePressure(t *testing.T) {
	// On highly reuseful code, reissue holds all younger instructions in
	// the IQ until verification; selective holds only dependents. Reissue
	// should therefore never be faster than selective.
	prog := assemble(t, reuseProg)
	cfgRe := pipeline.BaselineConfig()
	cfgRe.Recovery = pipeline.RecoverReissue
	cfgSel := pipeline.BaselineConfig()
	cfgSel.Recovery = pipeline.RecoverSelective
	re := run(t, prog, cfgRe, core.MustDynamicRVP(core.DefaultCounterConfig()))
	sel := run(t, prog, cfgSel, core.MustDynamicRVP(core.DefaultCounterConfig()))
	if re.Cycles < sel.Cycles {
		t.Errorf("reissue (%d) beat selective (%d)", re.Cycles, sel.Cycles)
	}
}

func TestAggressiveConfigFaster(t *testing.T) {
	prog := assemble(t, loopProg)
	base := run(t, prog, pipeline.BaselineConfig(), core.NoPredictor{})
	wide := run(t, prog, pipeline.AggressiveConfig(), core.NoPredictor{})
	if wide.Cycles > base.Cycles {
		t.Errorf("16-wide (%d cycles) slower than 8-wide (%d)", wide.Cycles, base.Cycles)
	}
}

func TestMaxInstsBudget(t *testing.T) {
	prog := assemble(t, loopProg)
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	st, err := sim.Run(prog, core.NoPredictor{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 100 {
		t.Errorf("committed %d, want 100", st.Committed)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := pipeline.BaselineConfig()
	bad.IssueWidth = 0
	if _, err := pipeline.New(bad); err == nil {
		t.Error("accepted zero issue width")
	}
	bad = pipeline.BaselineConfig()
	bad.LoadStore = bad.IntALUs + 1
	if _, err := pipeline.New(bad); err == nil {
		t.Error("accepted more LS ports than ALUs")
	}
	if _, err := pipeline.New(pipeline.BaselineConfig()); err != nil {
		t.Errorf("baseline config rejected: %v", err)
	}
}

func TestPortStarvationLimitsNonLoadPredictions(t *testing.T) {
	// All-instruction prediction with a 1-port limit drops some non-load
	// predictions; with the limit unmodelled (0) none are dropped.
	prog := assemble(t, reuseProg)
	cfg := pipeline.BaselineConfig()
	cfg.PredictPorts = 1
	pred := core.MustDynamicRVP(core.DefaultCounterConfig()) // all insts
	st := run(t, prog, cfg, pred)
	if st.PortStarved == 0 {
		t.Error("expected port starvation with 1 predict port")
	}
	cfg.PredictPorts = 0
	st2 := run(t, prog, cfg, core.MustDynamicRVP(core.DefaultCounterConfig()))
	if st2.PortStarved != 0 {
		t.Error("unmodelled port limit still starved predictions")
	}
	if st2.Predicted <= st.Predicted {
		t.Error("unlimited ports did not increase predictions")
	}
}

func TestBranchPredictionStats(t *testing.T) {
	prog := assemble(t, loopProg)
	st := run(t, prog, pipeline.BaselineConfig(), core.NoPredictor{})
	if st.CondBranches == 0 {
		t.Fatal("no conditional branches seen")
	}
	// A 2000-iteration loop branch should be nearly perfectly predicted.
	if st.BranchMispredictRate() > 0.01 {
		t.Errorf("branch mispredict rate %.3f too high for a simple loop", st.BranchMispredictRate())
	}
}

func TestRecoveryString(t *testing.T) {
	if pipeline.RecoverRefetch.String() != "refetch" ||
		pipeline.RecoverReissue.String() != "reissue" ||
		pipeline.RecoverSelective.String() != "selective" {
		t.Error("Recovery.String wrong")
	}
}
