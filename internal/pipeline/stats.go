package pipeline

import "fmt"

// Stats aggregates one simulation run.
type Stats struct {
	Cycles    int64
	Committed uint64
	Loads     uint64
	Stores    uint64
	Branches  uint64

	// Branch prediction.
	CondBranches   uint64
	CondMispredict uint64
	TargetMispred  uint64

	// Value prediction.
	Eligible       uint64 // register-writing instructions the predictor saw
	Predicted      uint64 // instructions actually predicted
	PredictCorrect uint64
	PredictWrong   uint64
	PortStarved    uint64 // predictions dropped for lack of a read port
	Refetches      uint64 // value-mispredict squashes (refetch recovery)

	// Memory.
	DL1Hits, DL1Misses uint64
	IL1Hits, IL1Misses uint64
	L2Hits, L2Misses   uint64

	// Occupancy stalls (dispatch cycles lost to each full resource).
	StallWindow int64
	StallIntIQ  int64
	StallFPIQ   int64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Coverage returns the fraction of committed instructions predicted.
func (s Stats) Coverage() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(s.Committed)
}

// Accuracy returns the fraction of predictions that were correct.
func (s Stats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return float64(s.PredictCorrect) / float64(s.Predicted)
}

// BranchMispredictRate returns mispredicts per conditional branch.
func (s Stats) BranchMispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.CondMispredict) / float64(s.CondBranches)
}

// String summarises the run.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d insts=%d IPC=%.3f loads=%d stores=%d pred=%d (%.1f%% of insts, %.1f%% correct) brMiss=%.2f%% stalls=window:%d/intIQ:%d/fpIQ:%d",
		s.Cycles, s.Committed, s.IPC(), s.Loads, s.Stores,
		s.Predicted, 100*s.Coverage(), 100*s.Accuracy(),
		100*s.BranchMispredictRate(),
		s.StallWindow, s.StallIntIQ, s.StallFPIQ)
}
