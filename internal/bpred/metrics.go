package bpred

import "rvpsim/internal/obs"

// PublishMetrics folds the predictor's counters into the registry. The
// predictor is per-run state, so one publish at the end of a run adds
// exactly that run's totals.
func (p *Predictor) PublishMetrics(reg *obs.Registry) {
	reg.Counter("rvpsim_bpred_cond_seen_total", "conditional branches predicted").Add(int64(p.CondSeen))
	reg.Counter("rvpsim_bpred_cond_mispredict_total", "conditional direction mispredicts").Add(int64(p.CondMispred))
	reg.Counter("rvpsim_bpred_target_miss_total", "taken transfers with unknown target").Add(int64(p.TargetMiss))
	reg.Counter("rvpsim_bpred_ras_correct_total", "returns predicted correctly by the RAS").Add(int64(p.RASCorrect))
	reg.Counter("rvpsim_bpred_ras_wrong_total", "returns mispredicted by the RAS").Add(int64(p.RASWrong))
	reg.Counter("rvpsim_bpred_uncond_seen_total", "unconditional transfers predicted").Add(int64(p.UncondSeen))
}
