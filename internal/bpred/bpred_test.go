package bpred

import (
	"testing"

	"rvpsim/internal/isa"
)

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := 100
	// Train: always taken. The global history register shifts for the
	// first HistoryBits updates, touching a fresh PHT index each time, so
	// warm-up takes a little over HistoryBits iterations.
	for i := 0; i < 50; i++ {
		pred := p.PredictCond(pc)
		p.UpdateCond(pc, true, pred)
	}
	if !p.PredictCond(pc) {
		t.Error("did not learn always-taken")
	}
	if p.CondSeen != 50 {
		t.Errorf("CondSeen = %d", p.CondSeen)
	}
	// Mispredicts should have stopped after warm-up.
	if p.CondMispred > 15 {
		t.Errorf("mispredicts = %d, want <= 15", p.CondMispred)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	// With global history, a strict alternation is learnable.
	p := New(DefaultConfig())
	pc := 7
	mispredLate := 0
	for i := 0; i < 200; i++ {
		taken := i%2 == 0
		pred := p.PredictCond(pc)
		correct := p.UpdateCond(pc, taken, pred)
		if i >= 100 && !correct {
			mispredLate++
		}
	}
	if mispredLate > 5 {
		t.Errorf("late mispredicts = %d, want few (history should capture alternation)", mispredLate)
	}
}

func TestBTBLearnsTarget(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := 50, 90
	if _, ok := p.PredictTarget(isa.BR, pc); ok {
		t.Error("cold BTB hit")
	}
	p.UpdateTarget(isa.BR, pc, tgt, 0, false)
	got, ok := p.PredictTarget(isa.BR, pc)
	if !ok || got != tgt {
		t.Errorf("PredictTarget = %d, %v", got, ok)
	}
	if !p.UpdateTarget(isa.BR, pc, tgt, got, ok) {
		t.Error("correct target reported wrong")
	}
}

func TestBTBReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 8
	cfg.BTBAssoc = 2 // 4 sets
	p := New(cfg)
	// Three branches mapping to set 2 (pc % 4 == 2): 2, 6, 10.
	p.UpdateTarget(isa.BR, 2, 100, 0, false)
	p.UpdateTarget(isa.BR, 6, 200, 0, false)
	p.PredictTarget(isa.BR, 2) // touch 2: 6 becomes LRU
	p.UpdateTarget(isa.BR, 10, 300, 0, false)
	if _, ok := p.PredictTarget(isa.BR, 2); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := p.PredictTarget(isa.BR, 6); ok {
		t.Error("LRU entry survived")
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	p.OnFetchCall(11)
	p.OnFetchCall(22)
	tgt, ok := p.PredictTarget(isa.RET, 0)
	if !ok || tgt != 22 {
		t.Errorf("RAS top = %d, %v", tgt, ok)
	}
	p.OnFetchReturn()
	tgt, _ = p.PredictTarget(isa.RET, 0)
	if tgt != 11 {
		t.Errorf("RAS next = %d", tgt)
	}
	p.OnFetchReturn()
	if _, ok := p.PredictTarget(isa.RET, 0); ok {
		t.Error("empty RAS predicted")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := New(cfg)
	p.OnFetchCall(1)
	p.OnFetchCall(2)
	p.OnFetchCall(3) // overwrites oldest
	tgt, ok := p.PredictTarget(isa.RET, 0)
	if !ok || tgt != 3 {
		t.Errorf("top after overflow = %d", tgt)
	}
	p.OnFetchReturn()
	tgt, _ = p.PredictTarget(isa.RET, 0)
	if tgt != 2 {
		t.Errorf("second after overflow = %d", tgt)
	}
}

func TestRASStats(t *testing.T) {
	p := New(DefaultConfig())
	p.OnFetchCall(5)
	tgt, ok := p.PredictTarget(isa.RET, 0)
	p.OnFetchReturn()
	if !p.UpdateTarget(isa.RET, 0, 5, tgt, ok) {
		t.Error("correct return counted wrong")
	}
	if p.RASCorrect != 1 || p.RASWrong != 0 {
		t.Errorf("RAS stats = %d/%d", p.RASCorrect, p.RASWrong)
	}
	if p.UpdateTarget(isa.RET, 0, 99, tgt, ok) {
		t.Error("wrong return counted correct")
	}
	if p.RASWrong != 1 {
		t.Errorf("RASWrong = %d", p.RASWrong)
	}
}
