package bpred

import (
	"fmt"

	"rvpsim/internal/simerr"
)

// State is the restorable state of the branch predictor: PHT, global
// history, BTB contents, return-address stack, and statistics. Geometry
// is not serialized — a restored run rebuilds the predictor from its
// Config first. Restore errors wrap simerr.ErrCorrupt.
type State struct {
	PHT     []uint8
	History uint64

	BTBTags  []uint64
	BTBTgts  []int
	BTBValid []bool
	BTBLRU   []uint8

	RAS    []int
	RASTop int

	CondSeen    uint64
	CondMispred uint64
	TargetMiss  uint64
	RASCorrect  uint64
	RASWrong    uint64
	UncondSeen  uint64
}

// Snapshot captures the predictor's dynamic state.
func (p *Predictor) Snapshot() State {
	return State{
		PHT:         append([]uint8(nil), p.pht...),
		History:     p.history,
		BTBTags:     append([]uint64(nil), p.btbTags...),
		BTBTgts:     append([]int(nil), p.btbTgts...),
		BTBValid:    append([]bool(nil), p.btbValid...),
		BTBLRU:      append([]uint8(nil), p.btbLRU...),
		RAS:         append([]int(nil), p.ras...),
		RASTop:      p.rasTop,
		CondSeen:    p.CondSeen,
		CondMispred: p.CondMispred,
		TargetMiss:  p.TargetMiss,
		RASCorrect:  p.RASCorrect,
		RASWrong:    p.RASWrong,
		UncondSeen:  p.UncondSeen,
	}
}

// Restore loads a snapshot taken from a predictor of identical geometry.
func (p *Predictor) Restore(s State) error {
	if len(s.PHT) != len(p.pht) || len(s.BTBTags) != len(p.btbTags) ||
		len(s.BTBTgts) != len(p.btbTgts) || len(s.BTBValid) != len(p.btbValid) ||
		len(s.BTBLRU) != len(p.btbLRU) || len(s.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: snapshot geometry mismatch: %w", simerr.ErrCorrupt)
	}
	if s.RASTop < 0 || s.RASTop > len(p.ras) {
		return fmt.Errorf("bpred: snapshot RAS top %d out of range: %w", s.RASTop, simerr.ErrCorrupt)
	}
	copy(p.pht, s.PHT)
	p.history = s.History
	copy(p.btbTags, s.BTBTags)
	copy(p.btbTgts, s.BTBTgts)
	copy(p.btbValid, s.BTBValid)
	copy(p.btbLRU, s.BTBLRU)
	copy(p.ras, s.RAS)
	p.rasTop = s.RASTop
	p.CondSeen = s.CondSeen
	p.CondMispred = s.CondMispred
	p.TargetMiss = s.TargetMiss
	p.RASCorrect = s.RASCorrect
	p.RASWrong = s.RASWrong
	p.UncondSeen = s.UncondSeen
	return nil
}
