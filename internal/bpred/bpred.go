// Package bpred implements the paper's Table 1 branch prediction logic:
// a gshare direction predictor with a 2K-entry, 2-bit pattern history
// table, a 256-entry branch target buffer, and a return-address stack.
package bpred

import (
	"rvpsim/internal/isa"
)

// Config sizes the predictor.
type Config struct {
	PHTEntries  int // pattern history table entries (power of two)
	HistoryBits int // global history length
	BTBEntries  int // branch target buffer entries
	BTBAssoc    int // BTB associativity
	RASEntries  int // return-address stack depth
}

// DefaultConfig is the paper's configuration: 2K x 2-bit PHT gshare and a
// 256-entry BTB.
func DefaultConfig() Config {
	return Config{PHTEntries: 2048, HistoryBits: 11, BTBEntries: 256, BTBAssoc: 4, RASEntries: 16}
}

// Predictor is the branch prediction unit. PCs are instruction indices
// (the simulator's fetch unit works in index space; the hash spreads them).
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters
	history uint64
	histMsk uint64

	btbTags  []uint64
	btbTgts  []int
	btbValid []bool
	btbLRU   []uint8
	btbSets  int

	ras    []int
	rasTop int

	// Statistics.
	CondSeen    uint64
	CondMispred uint64
	TargetMiss  uint64 // taken control transfers whose target was unknown
	RASCorrect  uint64
	RASWrong    uint64
	UncondSeen  uint64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	sets := cfg.BTBEntries / cfg.BTBAssoc
	return &Predictor{
		cfg:      cfg,
		pht:      make([]uint8, cfg.PHTEntries),
		histMsk:  uint64(1)<<cfg.HistoryBits - 1,
		btbTags:  make([]uint64, cfg.BTBEntries),
		btbTgts:  make([]int, cfg.BTBEntries),
		btbValid: make([]bool, cfg.BTBEntries),
		btbLRU:   make([]uint8, cfg.BTBEntries),
		btbSets:  sets,
		ras:      make([]int, cfg.RASEntries),
	}
}

func (p *Predictor) phtIndex(pc int) int {
	return int((uint64(pc) ^ p.history) & uint64(p.cfg.PHTEntries-1))
}

// PredictCond predicts the direction of the conditional branch at pc and
// returns the predicted taken/not-taken.
func (p *Predictor) PredictCond(pc int) bool {
	return p.pht[p.phtIndex(pc)] >= 2
}

// UpdateCond trains the direction predictor with the branch's outcome and
// records whether the prediction was correct. It returns correct.
func (p *Predictor) UpdateCond(pc int, taken, predicted bool) bool {
	p.CondSeen++
	i := p.phtIndex(pc)
	c := p.pht[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pht[i] = c
	p.history = (p.history<<1 | b2u(taken)) & p.histMsk
	if predicted != taken {
		p.CondMispred++
		return false
	}
	return true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// btbLookup returns the predicted target for pc, ok == false on miss.
func (p *Predictor) btbLookup(pc int) (int, bool) {
	set := pc & (p.btbSets - 1)
	base := set * p.cfg.BTBAssoc
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbValid[base+w] && p.btbTags[base+w] == uint64(pc) {
			p.btbTouch(base, w)
			return p.btbTgts[base+w], true
		}
	}
	return 0, false
}

func (p *Predictor) btbTouch(base, w int) {
	old := p.btbLRU[base+w]
	for i := 0; i < p.cfg.BTBAssoc; i++ {
		if p.btbLRU[base+i] > old {
			p.btbLRU[base+i]--
		}
	}
	p.btbLRU[base+w] = uint8(p.cfg.BTBAssoc - 1)
}

// btbInsert installs pc -> target.
func (p *Predictor) btbInsert(pc, target int) {
	set := pc & (p.btbSets - 1)
	base := set * p.cfg.BTBAssoc
	victim := 0
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if !p.btbValid[base+w] {
			victim = w
			break
		}
		if p.btbLRU[base+w] < p.btbLRU[base+victim] {
			victim = w
		}
	}
	p.btbTags[base+victim] = uint64(pc)
	p.btbTgts[base+victim] = target
	p.btbValid[base+victim] = true
	p.btbTouch(base, victim)
}

// PredictTarget predicts the target of the control transfer at pc with
// opcode op; returnsite is pc+1 pushed for calls. ok == false means the
// front end cannot redirect (treated as a fetch break by the pipeline).
func (p *Predictor) PredictTarget(op isa.Op, pc int) (int, bool) {
	switch op {
	case isa.RET:
		if p.rasTop > 0 {
			return p.ras[p.rasTop-1], true
		}
		return 0, false
	default:
		return p.btbLookup(pc)
	}
}

// OnFetchCall pushes the return site when the fetch unit speculatively
// follows a call.
func (p *Predictor) OnFetchCall(returnSite int) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = returnSite
		p.rasTop++
	} else {
		// Wrap: overwrite the bottom (simple circular behaviour).
		copy(p.ras, p.ras[1:])
		p.ras[len(p.ras)-1] = returnSite
	}
}

// OnFetchReturn pops the RAS when the fetch unit follows a return.
func (p *Predictor) OnFetchReturn() {
	if p.rasTop > 0 {
		p.rasTop--
	}
}

// UpdateTarget trains the BTB with an executed control transfer and
// records target-prediction statistics. predictedTarget/predictedOK are
// what PredictTarget returned at fetch. It reports whether the predicted
// target was correct.
func (p *Predictor) UpdateTarget(op isa.Op, pc, target, predictedTarget int, predictedOK bool) bool {
	p.UncondSeen++
	correct := predictedOK && predictedTarget == target
	if op == isa.RET {
		if correct {
			p.RASCorrect++
		} else {
			p.RASWrong++
		}
		return correct
	}
	if !correct {
		p.TargetMiss++
		p.btbInsert(pc, target)
	}
	return correct
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Reset clears all prediction state and statistics, as if freshly built.
// Configuration (and therefore every table's size) is unchanged, which
// lets a simulator reuse one predictor across runs instead of
// reallocating its tables.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 0
	}
	p.history = 0
	for i := range p.btbTags {
		p.btbTags[i] = 0
		p.btbTgts[i] = 0
		p.btbValid[i] = false
		p.btbLRU[i] = 0
	}
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.rasTop = 0
	p.CondSeen, p.CondMispred, p.TargetMiss = 0, 0, 0
	p.RASCorrect, p.RASWrong, p.UncondSeen = 0, 0, 0
}
