package program_test

import (
	"testing"

	"rvpsim/internal/isa"
	"rvpsim/internal/program"
	"rvpsim/internal/progtest"
)

// TestCFGCoversAllInstructions: every instruction of a random procedure
// belongs to exactly one block, blocks tile the procedure, and edges point
// at block starts.
func TestCFGCoversAllInstructions(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		p := progtest.Random(uint64(seed))
		for pi := range p.Procs {
			proc := &p.Procs[pi]
			g := program.BuildCFG(p, proc)
			covered := make([]bool, proc.End-proc.Start)
			for _, b := range g.Blocks {
				if b.Start < proc.Start || b.End > proc.End || b.Start >= b.End {
					t.Fatalf("seed %d: block range [%d,%d) outside proc [%d,%d)",
						seed, b.Start, b.End, proc.Start, proc.End)
				}
				for i := b.Start; i < b.End; i++ {
					if covered[i-proc.Start] {
						t.Fatalf("seed %d: instruction %d in two blocks", seed, i)
					}
					covered[i-proc.Start] = true
					if g.BlockOf(i) != b.ID {
						t.Fatalf("seed %d: BlockOf(%d) = %d, want %d", seed, i, g.BlockOf(i), b.ID)
					}
				}
				for _, s := range b.Succs {
					if s < 0 || s >= len(g.Blocks) {
						t.Fatalf("seed %d: edge to invalid block %d", seed, s)
					}
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("seed %d: instruction %d uncovered", seed, proc.Start+i)
				}
			}
		}
	}
}

// TestDominatorsEntryDominatesAll: on random procedures, the entry block
// dominates every reachable block (walking idom chains terminates at the
// entry).
func TestDominatorsEntryDominatesAll(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		p := progtest.Random(uint64(seed))
		proc := &p.Procs[0]
		g := program.BuildCFG(p, proc)
		idom := g.Dominators()
		for b := range g.Blocks {
			if idom[b] == -1 {
				continue // unreachable
			}
			seen := map[int]bool{}
			x := b
			for x != 0 {
				if seen[x] {
					t.Fatalf("seed %d: idom cycle at block %d", seed, b)
				}
				seen[x] = true
				x = idom[x]
			}
		}
	}
}

// TestLoopsAreProperlyNested: a loop's parent always contains all its
// blocks, and depths increase by exactly one per nesting level.
func TestLoopsAreProperlyNested(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		p := progtest.Random(uint64(seed))
		proc := &p.Procs[0]
		g := program.BuildCFG(p, proc)
		loops := g.NaturalLoops()
		for i := range loops {
			if loops[i].Parent == -1 {
				if loops[i].Depth != 1 {
					t.Fatalf("seed %d: outermost loop depth %d", seed, loops[i].Depth)
				}
				continue
			}
			parent := loops[loops[i].Parent]
			if parent.Depth != loops[i].Depth-1 {
				t.Fatalf("seed %d: depth not parent+1", seed)
			}
			for b := range loops[i].Blocks {
				if !parent.Blocks[b] {
					t.Fatalf("seed %d: nested loop block %d not in parent", seed, b)
				}
			}
		}
	}
}

// TestLivenessUsesAreLive: at every instruction, each non-zero source
// register is live-in (an immediate consequence of the dataflow
// equations, checked end-to-end).
func TestLivenessUsesAreLive(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		p := progtest.Random(uint64(seed))
		proc := &p.Procs[0]
		g := program.BuildCFG(p, proc)
		l := program.ComputeLiveness(p, g)
		for i := proc.Start; i < proc.End; i++ {
			for _, r := range p.Insts[i].Sources(nil) {
				if r.IsZero() {
					continue
				}
				if !l.LiveIn(i).Has(r) {
					t.Fatalf("seed %d: source %v not live-in at %d (%v)", seed, r, i, p.Insts[i])
				}
			}
		}
	}
}

// TestLivenessDeadMeansNoUseBeforeDef: spot-check DeadAt semantics by
// scanning forward along straight-line code.
func TestLivenessDeadMeansNoUseBeforeDef(t *testing.T) {
	p := progtest.Random(4)
	proc := &p.Procs[0]
	g := program.BuildCFG(p, proc)
	l := program.ComputeLiveness(p, g)
	// Within each block: if r is dead after i, then scanning to the block
	// end r must be written before any read.
	for _, b := range blocksOf(g) {
		for i := b.Start; i < b.End-1; i++ {
			for r := isa.Reg(1); r < 30; r++ {
				if !l.DeadAt(i, r) {
					continue
				}
				for j := i + 1; j < b.End; j++ {
					reads := false
					for _, s := range p.Insts[j].Sources(nil) {
						if s == r {
							reads = true
						}
					}
					if reads {
						t.Fatalf("dead %v at %d read at %d before redefinition", r, i, j)
					}
					if d, ok := p.Insts[j].Dest(); ok && d == r {
						break
					}
				}
			}
		}
	}
}

func blocksOf(g *program.CFG) []program.Block { return g.Blocks }
