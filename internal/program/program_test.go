package program_test

import (
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/isa"
	"rvpsim/internal/program"
)

// nestedLoops has an outer loop over r1 and an inner loop over r2.
const nestedLoops = `
.text
.proc main
main:
        li      r1, 10
outer:
        li      r2, 5
inner:
        subi    r2, r2, 1
        bne     r2, inner
        subi    r1, r1, 1
        bne     r1, outer
        halt
.endproc
`

func mustAsm(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCFGBlocks(t *testing.T) {
	p := mustAsm(t, nestedLoops)
	g := program.BuildCFG(p, &p.Procs[0])
	// Expected blocks: [li r1] [li r2] [subi r2; bne] [subi r1; bne] [halt]
	if len(g.Blocks) != 5 {
		t.Fatalf("got %d blocks, want 5: %+v", len(g.Blocks), g.Blocks)
	}
	// Block containing the inner bne must have two successors: inner head
	// and the following block.
	b := g.Blocks[g.BlockOf(p.Labels["inner"])]
	if len(b.Succs) != 2 {
		t.Errorf("inner block succs = %v, want 2", b.Succs)
	}
	// halt block has no successors.
	hb := g.Blocks[len(g.Blocks)-1]
	if len(hb.Succs) != 0 {
		t.Errorf("halt block has succs %v", hb.Succs)
	}
}

func TestNaturalLoopsNesting(t *testing.T) {
	p := mustAsm(t, nestedLoops)
	g := program.BuildCFG(p, &p.Procs[0])
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	var inner, outer *program.Loop
	for i := range loops {
		if loops[i].Depth == 2 {
			inner = &loops[i]
		} else if loops[i].Depth == 1 {
			outer = &loops[i]
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("loop depths wrong: %+v", loops)
	}
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Errorf("inner loop (%d blocks) not smaller than outer (%d)", len(inner.Blocks), len(outer.Blocks))
	}
	// The inner subi instruction belongs to the inner loop.
	li := g.InnermostLoop(loops, p.Labels["inner"])
	if li == -1 || loops[li].Depth != 2 {
		t.Errorf("InnermostLoop(inner subi) = %d", li)
	}
	// The outer subi belongs only to the outer loop.
	oi := g.InnermostLoop(loops, p.Labels["inner"]+2)
	if oi == -1 || loops[oi].Depth != 1 {
		t.Errorf("InnermostLoop(outer subi) = %d (depth %d)", oi, loops[oi].Depth)
	}
}

func TestDominators(t *testing.T) {
	// Diamond: entry -> (a | b) -> join.
	src := `
.text
.proc main
main:
        beq r1, elsebr
        addi r2, r2, 1
        jmp join
elsebr:
        addi r2, r2, 2
join:
        halt
.endproc
`
	p := mustAsm(t, src)
	g := program.BuildCFG(p, &p.Procs[0])
	idom := g.Dominators()
	entry := g.BlockOf(0)
	join := g.BlockOf(p.Labels["join"])
	if idom[join] != entry {
		t.Errorf("idom(join) = %d, want entry %d", idom[join], entry)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	src := `
.text
.proc main
main:
        add r1, r2, r3
        add r4, r1, r1
        add r1, r4, r4
        halt
.endproc
`
	p := mustAsm(t, src)
	g := program.BuildCFG(p, &p.Procs[0])
	l := program.ComputeLiveness(p, g)
	// After inst 0, r1 is live (read by inst 1).
	if !l.LiveOut(0).Has(1) {
		t.Error("r1 not live after its definition")
	}
	// After inst 1, r1's old value is dead (redefined at 2 before any read).
	if !l.DeadAt(1, isa.Reg(1)) {
		t.Error("r1 should be dead after inst 1")
	}
	// r4 is live after inst 1 (read at inst 2).
	if l.DeadAt(1, isa.Reg(4)) {
		t.Error("r4 should be live after inst 1")
	}
	// Zero register is never dead.
	if l.DeadAt(0, isa.RZero) {
		t.Error("r31 reported dead")
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	src := `
.text
.proc main
main:
        li r1, 10
        clr r2
loop:
        add r2, r2, r1
        subi r1, r1, 1
        bne r1, loop
        halt
.endproc
`
	p := mustAsm(t, src)
	g := program.BuildCFG(p, &p.Procs[0])
	l := program.ComputeLiveness(p, g)
	// r2 is live-out at the bne (loop-carried accumulator read next iter).
	bne := p.Labels["loop"] + 2
	if !l.LiveOut(bne).Has(2) {
		t.Error("loop-carried r2 not live at the back edge")
	}
	if !l.LiveOut(bne).Has(1) {
		t.Error("loop counter r1 not live at the back edge")
	}
}

func TestLivenessCallConventions(t *testing.T) {
	src := `
.text
.proc main
main:
        li r16, 1
        li r9, 7
        lda r5, fn
        jsr (r5)
        add r3, r9, r0
        halt
.endproc
.proc fn
fn:
        add r0, r16, r16
        ret
.endproc
`
	p := mustAsm(t, src)
	g := program.BuildCFG(p, &p.Procs[0])
	l := program.ComputeLiveness(p, g)
	jsr := 3
	// Argument register r16 is live right before the call.
	if !l.LiveIn(jsr).Has(16) {
		t.Error("arg reg r16 not live before jsr")
	}
	// Nonvolatile r9 survives the call: live before and after.
	if !l.LiveOut(jsr).Has(9) {
		t.Error("nonvolatile r9 not live across the call")
	}
	// Volatile r5 is clobbered by the call (dead after).
	if l.LiveOut(jsr).Has(5) {
		t.Error("volatile r5 live after the call")
	}
	// In fn, the return value r0 is live at ret.
	g2 := program.BuildCFG(p, &p.Procs[1])
	l2 := program.ComputeLiveness(p, g2)
	ret := p.Procs[1].Start + 1
	if !l2.LiveIn(ret).Has(isa.RV) {
		t.Error("return value not live at ret")
	}
}

func TestProcAtAndClone(t *testing.T) {
	p := mustAsm(t, nestedLoops)
	if pr := p.ProcAt(0); pr == nil || pr.Name != "main" {
		t.Errorf("ProcAt(0) = %v", pr)
	}
	if pr := p.ProcAt(len(p.Insts)); pr != nil {
		t.Errorf("ProcAt(end) = %v, want nil", pr)
	}
	if pr := p.ProcByName("main"); pr == nil {
		t.Error("ProcByName(main) = nil")
	}
	if pr := p.ProcByName("nope"); pr != nil {
		t.Error("ProcByName(nope) != nil")
	}
	c := p.Clone()
	c.Insts[0].Imm = 99
	if p.Insts[0].Imm == 99 {
		t.Error("Clone shares instruction storage")
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := mustAsm(t, nestedLoops)
	for i := range p.Insts {
		if got := p.Index(p.PC(i)); got != i {
			t.Fatalf("Index(PC(%d)) = %d", i, got)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	p := mustAsm(t, nestedLoops)
	bad := p.Clone()
	bad.Insts[3].Imm = 1 << 30 // branch target out of range
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted out-of-range branch")
	}
	bad2 := p.Clone()
	bad2.Entry = -1
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted bad entry")
	}
	bad3 := p.Clone()
	bad3.Procs = append(bad3.Procs, program.Procedure{Name: "x", Start: 0, End: 2})
	if err := bad3.Validate(); err == nil {
		t.Error("Validate accepted overlapping procedures")
	}
}

func TestRegSet(t *testing.T) {
	var s program.RegSet
	s.Add(3)
	s.Add(isa.FPReg(4))
	if !s.Has(3) || !s.Has(isa.FPReg(4)) || s.Has(5) {
		t.Error("RegSet membership wrong")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	s.Remove(3)
	if s.Has(3) || s.Count() != 1 {
		t.Error("Remove failed")
	}
	var u program.RegSet
	u.Add(9)
	if got := s.Union(u); !got.Has(9) || !got.Has(isa.FPReg(4)) {
		t.Error("Union wrong")
	}
}
