// Package program models an assembled program: its instructions, data
// image, procedures, control-flow graphs, natural loops, and register
// liveness. It is the substrate for the register-reuse profiler and for
// the Section 7.3 register re-allocator.
package program

import (
	"fmt"

	"rvpsim/internal/isa"
)

// Calling conventions, Alpha-flavoured. The paper's re-allocator assumes
// "all nonvolatile registers are live at entrance and exit, and each
// procedure call uses all argument registers"; these sets define that.
var (
	// ArgRegs are the integer argument registers (a0..a5 = r16..r21).
	ArgRegs = []isa.Reg{16, 17, 18, 19, 20, 21}
	// NonvolatileRegs are callee-saved integer registers (r9..r15) plus
	// the stack pointer and return-address register.
	NonvolatileRegs = []isa.Reg{9, 10, 11, 12, 13, 14, 15, isa.RSP, isa.RRA}
	// FPArgRegs are FP argument registers (f16..f21).
	FPArgRegs = []isa.Reg{isa.FPReg(16), isa.FPReg(17), isa.FPReg(18), isa.FPReg(19), isa.FPReg(20), isa.FPReg(21)}
	// FPNonvolatileRegs are callee-saved FP registers (f2..f9).
	FPNonvolatileRegs = []isa.Reg{isa.FPReg(2), isa.FPReg(3), isa.FPReg(4), isa.FPReg(5), isa.FPReg(6), isa.FPReg(7), isa.FPReg(8), isa.FPReg(9)}
)

// DataChunk is a contiguous run of initialised simulated memory.
type DataChunk struct {
	Addr  uint64
	Words []uint64 // 64-bit words, little-endian in memory
}

// Procedure is a named, contiguous range of instructions [Start, End).
type Procedure struct {
	Name  string
	Start int // first instruction index
	End   int // one past the last instruction index
}

// Program is an assembled, runnable program. Instruction addresses are
// CodeBase + 8*index in simulated memory; branch targets in instructions
// are absolute instruction indices.
type Program struct {
	Name     string
	Insts    []isa.Inst
	Entry    int // entry instruction index
	Procs    []Procedure
	Data     []DataChunk
	Labels   map[string]int    // label -> instruction index
	DataSyms map[string]uint64 // data symbol -> address

	// CodeBase is the simulated-memory address of instruction 0.
	CodeBase uint64
	// StackTop is the initial stack pointer.
	StackTop uint64
}

// DefaultCodeBase and DefaultStackTop place code low and the stack high,
// far from workload data segments.
const (
	DefaultCodeBase = uint64(0x0000_0000_0001_0000)
	DefaultStackTop = uint64(0x0000_0000_7fff_0000)
)

// PC converts an instruction index to a simulated-memory address.
func (p *Program) PC(index int) uint64 { return p.CodeBase + uint64(index)*isa.InstBytes }

// Index converts a simulated-memory address back to an instruction index.
func (p *Program) Index(pc uint64) int { return int((pc - p.CodeBase) / isa.InstBytes) }

// ProcAt returns the procedure containing instruction index i, or nil.
func (p *Program) ProcAt(i int) *Procedure {
	for k := range p.Procs {
		if i >= p.Procs[k].Start && i < p.Procs[k].End {
			return &p.Procs[k]
		}
	}
	return nil
}

// ProcByName returns the named procedure, or nil.
func (p *Program) ProcByName(name string) *Procedure {
	for k := range p.Procs {
		if p.Procs[k].Name == name {
			return &p.Procs[k]
		}
	}
	return nil
}

// Clone returns a deep copy of the program; the re-allocator rewrites the
// copy's registers without disturbing the original.
func (p *Program) Clone() *Program {
	q := *p
	q.Insts = append([]isa.Inst(nil), p.Insts...)
	q.Procs = append([]Procedure(nil), p.Procs...)
	q.Data = make([]DataChunk, len(p.Data))
	for i, c := range p.Data {
		q.Data[i] = DataChunk{Addr: c.Addr, Words: append([]uint64(nil), c.Words...)}
	}
	q.Labels = make(map[string]int, len(p.Labels))
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	q.DataSyms = make(map[string]uint64, len(p.DataSyms))
	for k, v := range p.DataSyms {
		q.DataSyms[k] = v
	}
	return &q
}

// Validate performs structural sanity checks: branch targets in range,
// procedures non-overlapping and covering their instructions, and a HALT
// reachable from entry (statically present).
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: no instructions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Insts) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	halt := false
	for i, in := range p.Insts {
		switch {
		case isa.IsCondBranch(in.Op), in.Op == isa.BR:
			if in.Imm < 0 || in.Imm >= int64(len(p.Insts)) {
				return fmt.Errorf("program %q: inst %d (%v): branch target out of range", p.Name, i, in)
			}
		case in.Op == isa.HALT:
			halt = true
		}
	}
	if !halt {
		return fmt.Errorf("program %q: no HALT instruction", p.Name)
	}
	for i := range p.Procs {
		pr := &p.Procs[i]
		if pr.Start < 0 || pr.End > len(p.Insts) || pr.Start >= pr.End {
			return fmt.Errorf("program %q: procedure %q range [%d,%d) invalid", p.Name, pr.Name, pr.Start, pr.End)
		}
		for j := range p.Procs {
			if i != j && pr.Start < p.Procs[j].End && p.Procs[j].Start < pr.End {
				return fmt.Errorf("program %q: procedures %q and %q overlap", p.Name, pr.Name, p.Procs[j].Name)
			}
		}
	}
	return nil
}
