package program

import "rvpsim/internal/isa"

// RegSet is a bitset over the 64 architectural registers.
type RegSet uint64

// Add inserts r into the set.
func (s *RegSet) Add(r isa.Reg) { *s |= 1 << r }

// Remove deletes r from the set.
func (s *RegSet) Remove(r isa.Reg) { *s &^= 1 << r }

// Has reports membership.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<r) != 0 }

// Union returns s | t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// conventionSets computes the sets the paper's liveness assumptions need.
func conventionSets() (entryExitLive, callUses, callDefs RegSet) {
	for _, r := range NonvolatileRegs {
		entryExitLive.Add(r)
	}
	for _, r := range FPNonvolatileRegs {
		entryExitLive.Add(r)
	}
	entryExitLive.Add(isa.RV)
	for _, r := range ArgRegs {
		callUses.Add(r)
	}
	for _, r := range FPArgRegs {
		callUses.Add(r)
	}
	// A call clobbers every volatile register: everything not nonvolatile
	// and not a hardwired zero.
	var nonvol RegSet
	for _, r := range NonvolatileRegs {
		nonvol.Add(r)
	}
	for _, r := range FPNonvolatileRegs {
		nonvol.Add(r)
	}
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.Reg(r)
		if !nonvol.Has(reg) && !reg.IsZero() {
			callDefs.Add(reg)
		}
	}
	return
}

// Liveness holds per-instruction liveness for one procedure.
type Liveness struct {
	Proc *Procedure
	// liveOut[i-Proc.Start] is the set of registers live immediately
	// after instruction i executes.
	liveOut []RegSet
	// liveIn[i-Proc.Start] is the set live immediately before i.
	liveIn []RegSet
}

// LiveOut returns the registers live immediately after instruction i.
func (l *Liveness) LiveOut(i int) RegSet { return l.liveOut[i-l.Proc.Start] }

// LiveIn returns the registers live immediately before instruction i.
func (l *Liveness) LiveIn(i int) RegSet { return l.liveIn[i-l.Proc.Start] }

// DeadAt reports whether register r is dead immediately after instruction
// i: its current value will not be read again before being overwritten on
// any path. Hardwired zero registers are never considered dead (they are
// not allocatable).
func (l *Liveness) DeadAt(i int, r isa.Reg) bool {
	if r.IsZero() {
		return false
	}
	return !l.LiveOut(i).Has(r)
}

// instUses returns the registers read by instruction in, accounting for
// calling conventions at JSR/RET/HALT boundaries.
func instUses(in isa.Inst, callUses, exitLive RegSet) RegSet {
	var s RegSet
	switch in.Op {
	case isa.JSR:
		s = callUses
		s.Add(in.Ra)
	case isa.RET:
		s = exitLive
		s.Add(in.Ra)
	case isa.HALT:
		s.Add(isa.RV)
	default:
		for _, r := range in.Sources(nil) {
			if !r.IsZero() {
				s.Add(r)
			}
		}
	}
	return s
}

// instDefs returns the registers written by instruction in, accounting for
// call clobbers.
func instDefs(in isa.Inst, callDefs RegSet) RegSet {
	var s RegSet
	if in.Op == isa.JSR {
		s = callDefs
		if !in.Rd.IsZero() {
			s.Add(in.Rd)
		}
		return s
	}
	if d, ok := in.Dest(); ok {
		s.Add(d)
	}
	return s
}

// ComputeLiveness runs backward liveness dataflow over the procedure's CFG
// under the paper's assumptions: nonvolatile registers (and the return
// value) are live at procedure exit, calls read all argument registers and
// clobber all volatile registers.
func ComputeLiveness(prog *Program, g *CFG) *Liveness {
	exitLive, callUses, callDefs := conventionSets()
	n := g.Proc.End - g.Proc.Start
	l := &Liveness{Proc: g.Proc, liveOut: make([]RegSet, n), liveIn: make([]RegSet, n)}

	nb := len(g.Blocks)
	blockUse := make([]RegSet, nb)
	blockDef := make([]RegSet, nb)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		var use, def RegSet
		for i := b.Start; i < b.End; i++ {
			in := prog.Insts[i]
			u := instUses(in, callUses, exitLive)
			use |= u &^ def
			def |= instDefs(in, callDefs)
		}
		blockUse[bi] = use
		blockDef[bi] = def
	}
	blockLiveOut := make([]RegSet, nb)
	blockLiveIn := make([]RegSet, nb)
	// Blocks ending in RET or HALT (or with no successors) expose the
	// exit-live set.
	exitOut := func(bi int) RegSet {
		b := &g.Blocks[bi]
		last := prog.Insts[b.End-1]
		if last.Op == isa.RET || last.Op == isa.HALT || len(b.Succs) == 0 {
			return exitLive
		}
		return 0
	}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			out := exitOut(bi)
			for _, s := range g.Blocks[bi].Succs {
				out |= blockLiveIn[s]
			}
			in := blockUse[bi] | (out &^ blockDef[bi])
			if out != blockLiveOut[bi] || in != blockLiveIn[bi] {
				blockLiveOut[bi] = out
				blockLiveIn[bi] = in
				changed = true
			}
		}
	}
	// Per-instruction liveness within each block, walked backward.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		out := blockLiveOut[bi]
		for i := b.End - 1; i >= b.Start; i-- {
			in := prog.Insts[i]
			l.liveOut[i-g.Proc.Start] = out
			liveIn := instUses(in, callUses, exitLive) | (out &^ instDefs(in, callDefs))
			l.liveIn[i-g.Proc.Start] = liveIn
			out = liveIn
		}
	}
	return l
}
