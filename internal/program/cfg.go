package program

import (
	"sort"

	"rvpsim/internal/isa"
)

// Block is a basic block of a procedure's control-flow graph. Instruction
// indices are program-wide; [Start, End) is contiguous.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int // successor block IDs
	Preds []int // predecessor block IDs
}

// CFG is the control-flow graph of one procedure. Calls (JSR) are treated
// as straight-line instructions whose successor is the fall-through (the
// analysis is intraprocedural); RET and HALT terminate paths.
type CFG struct {
	Proc   *Procedure
	Blocks []Block
	// blockOf maps an instruction index (relative to Proc.Start) to its
	// block ID.
	blockOf []int
}

// BuildCFG constructs the control-flow graph of proc within prog.
func BuildCFG(prog *Program, proc *Procedure) *CFG {
	n := proc.End - proc.Start
	// Leaders: first instruction, branch targets, instructions after CTIs.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i := proc.Start; i < proc.End; i++ {
		in := prog.Insts[i]
		switch {
		case isa.IsCondBranch(in.Op) || in.Op == isa.BR:
			t := int(in.Imm)
			if t >= proc.Start && t < proc.End {
				leader[t-proc.Start] = true
			}
			if i+1 < proc.End {
				leader[i+1-proc.Start] = true
			}
		case in.Op == isa.JSR:
			// Call: fall-through continues the block structure; we still
			// split so the call ends a block (helps liveness at call sites).
			if i+1 < proc.End {
				leader[i+1-proc.Start] = true
			}
		case in.Op == isa.RET || in.Op == isa.HALT:
			if i+1 < proc.End {
				leader[i+1-proc.Start] = true
			}
		}
	}
	g := &CFG{Proc: proc, blockOf: make([]int, n)}
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		id := len(g.Blocks)
		g.Blocks = append(g.Blocks, Block{ID: id, Start: proc.Start + i, End: proc.Start + j})
		for k := i; k < j; k++ {
			g.blockOf[k] = id
		}
		i = j
	}
	// Edges.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := prog.Insts[b.End-1]
		addEdge := func(target int) {
			if target >= proc.Start && target < proc.End {
				g.addEdge(bi, g.blockOf[target-proc.Start])
			}
		}
		switch {
		case last.Op == isa.BR:
			addEdge(int(last.Imm))
		case isa.IsCondBranch(last.Op):
			addEdge(int(last.Imm))
			addEdge(b.End) // fall-through
		case last.Op == isa.RET || last.Op == isa.HALT:
			// no successors
		default:
			addEdge(b.End) // includes JSR fall-through
		}
	}
	return g
}

func (g *CFG) addEdge(from, to int) {
	for _, s := range g.Blocks[from].Succs {
		if s == to {
			return
		}
	}
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// BlockOf returns the block ID containing instruction index i (program-wide).
func (g *CFG) BlockOf(i int) int { return g.blockOf[i-g.Proc.Start] }

// Dominators computes the immediate-dominator array via the iterative
// dataflow algorithm (Cooper/Harvey/Kennedy). idom[entry] == entry.
func (g *CFG) Dominators() []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	// Reverse postorder.
	order := g.reversePostorder()
	rpoNum := make([]int, n)
	for i, b := range order {
		rpoNum[b] = i
	}
	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
					continue
				}
				// intersect
				x, y := p, newIdom
				for x != y {
					for rpoNum[x] > rpoNum[y] {
						x = idom[x]
					}
					for rpoNum[y] > rpoNum[x] {
						y = idom[y]
					}
				}
				newIdom = x
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func (g *CFG) reversePostorder() []int {
	n := len(g.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	// Unreachable blocks appended at the end so every block has an order.
	for b := 0; b < n; b++ {
		if !seen[b] {
			post = append([]int{b}, post...)
		}
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Loop is a natural loop: a back edge's header plus its body blocks.
type Loop struct {
	Header int
	Blocks map[int]bool
	Depth  int   // nesting depth; outermost loops have depth 1
	Parent int   // index into the loops slice, -1 for outermost
	Insts  []int // all instruction indices in the loop body, sorted
}

// NaturalLoops finds the natural loops of the CFG and computes nesting
// depths. Loops sharing a header are merged.
func (g *CFG) NaturalLoops() []Loop {
	idom := g.Dominators()
	dominates := func(a, b int) bool {
		// a dominates b?
		for b != idom[b] {
			if b == a {
				return true
			}
			b = idom[b]
			if b == -1 {
				return false
			}
		}
		return a == b
	}
	byHeader := map[int]map[int]bool{}
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			if idom[bi] != -1 && dominates(s, bi) {
				// back edge bi -> s; natural loop body.
				body := byHeader[s]
				if body == nil {
					body = map[int]bool{s: true}
					byHeader[s] = body
				}
				var stack []int
				if !body[bi] {
					body[bi] = true
					stack = append(stack, bi)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.Blocks[x].Preds {
						if !body[p] {
							body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []Loop
	for h, body := range byHeader {
		loops = append(loops, Loop{Header: h, Blocks: body, Parent: -1})
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })
	// Nesting: loop i is nested in loop j if j's body contains i's header
	// and i != j and i's body is a subset (we use header containment plus
	// size ordering, sufficient for natural loops with distinct headers).
	for i := range loops {
		best := -1
		for j := range loops {
			if i == j || !loops[j].Blocks[loops[i].Header] {
				continue
			}
			if len(loops[j].Blocks) <= len(loops[i].Blocks) {
				continue
			}
			if best == -1 || len(loops[j].Blocks) < len(loops[best].Blocks) {
				best = j
			}
		}
		loops[i].Parent = best
	}
	for i := range loops {
		d := 1
		for p := loops[i].Parent; p != -1; p = loops[p].Parent {
			d++
		}
		loops[i].Depth = d
		for b := range loops[i].Blocks {
			for k := g.Blocks[b].Start; k < g.Blocks[b].End; k++ {
				loops[i].Insts = append(loops[i].Insts, k)
			}
		}
		sort.Ints(loops[i].Insts)
	}
	return loops
}

// InnermostLoop returns the innermost loop containing instruction index i,
// or -1 when i is not inside any loop. loops must come from NaturalLoops.
func (g *CFG) InnermostLoop(loops []Loop, i int) int {
	b := g.BlockOf(i)
	best, bestDepth := -1, 0
	for li := range loops {
		if loops[li].Blocks[b] && loops[li].Depth > bestDepth {
			best, bestDepth = li, loops[li].Depth
		}
	}
	return best
}
