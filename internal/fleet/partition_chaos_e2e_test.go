// Fleet partition chaos e2e: the hostile-network companion to the
// SIGKILL chaos test. Three real rvpd workers sit behind netfault
// proxies running seeded fault schedules — resets, latency spikes,
// bit flips, slow-loris trickles, full and one-way partitions — while
// an in-process coordinator runs a sweep across them and one worker is
// SIGKILLed mid-lease. The sweep must still converge to a result table
// byte-identical to the single-node reference, with every merged cell
// digest-verified, and a noisy tenant hammering a surviving worker
// must be shed with 429s and honest Retry-After hints while the
// fleet's own tenant keeps its quota.
//
// The fault schedules derive from one seed (RVP_CHAOS_SEED overrides
// it); a failure prints the seed and every per-link plan, which is the
// complete reproduction recipe.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rvpsim/internal/fleet"
	"rvpsim/internal/netfault"
	"rvpsim/internal/server"
	"rvpsim/internal/testutil/leak"
)

func TestFleetPartitionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet partition chaos e2e skipped in -short mode")
	}
	leak.Check(t)

	seed := int64(20260809)
	if env := os.Getenv("RVP_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("RVP_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("fault schedule seed: %d (rerun with RVP_CHAOS_SEED=%d)", seed, seed)

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rvpd")
	if out, err := exec.Command("go", "build", "-o", bin, "rvpsim/cmd/rvpd").CombinedOutput(); err != nil {
		t.Fatalf("building rvpd: %v\n%s", err, out)
	}

	// Three workers, each with per-tenant admission (quota 4, so the
	// fleet tenant never trips it at one lease per worker) and each
	// reachable only through a fault-injecting proxy.
	kinds := []netfault.Kind{
		netfault.KindReset, netfault.KindLatency, netfault.KindFlip,
		netfault.KindSlowLoris, netfault.KindPartition, netfault.KindPartitionOneWay,
	}
	type worker struct {
		cmd   *exec.Cmd
		url   string // direct URL (the tenant hammer uses this)
		proxy *netfault.Proxy
		plans []netfault.Plan
		logs  *bytes.Buffer
	}
	var ws []*worker
	var proxyURLs []string
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		cmd, url, logs := startWorker(t, bin,
			filepath.Join(tmp, "w", name), filepath.Join(tmp, "addr-"+name),
			"-tenant-queue", "4", "-body-read-timeout", "2s")
		plans := netfault.Schedule(seed+int64(i), 500, 12, kinds, 400*time.Millisecond)
		inj := netfault.NewInjector()
		inj.Apply(plans...)
		p, err := netfault.NewProxy(url, inj)
		if err != nil {
			t.Fatalf("proxy for %s: %v", url, err)
		}
		ws = append(ws, &worker{cmd: cmd, url: url, proxy: p, plans: plans, logs: logs})
		proxyURLs = append(proxyURLs, p.URL())
		t.Logf("worker %s via %s, schedule %s", url, p.URL(), netfault.FormatPlans(plans))
	}
	defer func() {
		for _, w := range ws {
			w.proxy.Close()
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("reproduction: RVP_CHAOS_SEED=%d", seed)
			for _, w := range ws {
				t.Logf("  %s: %s", w.url, netfault.FormatPlans(w.plans))
			}
		}
	}()

	c, err := fleet.Open(fleet.Config{
		StateDir:  filepath.Join(tmp, "coord"),
		Workers:   proxyURLs,
		Lease:     2 * time.Second,
		Heartbeat: 200 * time.Millisecond,
		Poll:      20 * time.Millisecond,
		StealAge:  1 * time.Second,
		Tenant:    "fleet",
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Stop()

	// 9 cells of real simulation: enough runway for the violence.
	spec := fleet.SweepSpec{
		Workloads:  []string{"go", "li", "perl"},
		Predictors: []string{"none", "rvp", "stride"},
		Insts:      300_000,
	}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	id := st.ID

	// SIGKILL the first worker that holds a lease.
	var killed string
	deadline := time.Now().Add(60 * time.Second)
	for killed == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no worker ever held a lease")
		}
		got, _ := c.Status(id)
		if got.Terminal() {
			t.Fatalf("sweep finished before the kill could land; grow the budget")
		}
		for _, w := range got.Workers {
			if w.Leased > 0 {
				killed = w.URL // proxy URL
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	var survivor *worker
	for _, w := range ws {
		if w.proxy.URL() == killed {
			if err := w.cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL %s: %v", w.url, err)
			}
			w.cmd.Wait()
			t.Logf("killed worker %s (proxy %s) while it held a lease", w.url, killed)
		} else if survivor == nil {
			survivor = w
		}
	}

	// A noisy tenant floods a surviving worker directly (off-proxy, so
	// the flood is deterministic): with a per-tenant queue quota of 4 a
	// burst of 8 heavyweight submissions — each slow enough that the
	// queue cannot drain between them — must draw 429s carrying an
	// honest Retry-After, while earlier ones are accepted.
	noisyBody, _ := json.Marshal(map[string]any{
		"kind": "run", "workload": "m88ksim", "predictor": "rvp",
		"insts": 6_000_000, "profile_insts": 500_000,
	})
	var accepted, shed int
	for i := 0; i < 8; i++ {
		req, _ := http.NewRequest("POST", survivor.url+"/v1/jobs", bytes.NewReader(noisyBody))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.TenantHeader, "noisy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("noisy submit %d: %v", i, err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Errorf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
			}
			var body struct {
				Error             string `json:"error"`
				RetryAfterSeconds int    `json:"retry_after_seconds"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Errorf("decoding 429 body: %v", err)
			} else {
				if body.RetryAfterSeconds != ra {
					t.Errorf("429 body retry_after_seconds = %d, header = %d", body.RetryAfterSeconds, ra)
				}
				if !strings.Contains(body.Error, "noisy") {
					t.Errorf("429 error %q does not name the shed tenant", body.Error)
				}
			}
		default:
			t.Errorf("noisy submit %d: unexpected status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if shed == 0 {
		t.Errorf("noisy tenant was never shed: %d accepted, 0 rejected", accepted)
	}
	if accepted == 0 {
		t.Errorf("noisy tenant was shed outright; quota should admit a burst first")
	}
	t.Logf("noisy tenant: %d accepted, %d shed with Retry-After", accepted, shed)

	// The worker's own metrics must attribute the shedding to the noisy
	// tenant, not to the shared queue or the fleet tenant.
	mresp, err := http.Get(survivor.url + "/metrics")
	if err != nil {
		t.Fatalf("worker metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `srv_tenant_shed_total{tenant="noisy"}`) {
		t.Errorf("worker metrics carry no srv_tenant_shed_total for the noisy tenant")
	}
	if strings.Contains(string(mbody), `srv_tenant_shed_total{tenant="fleet"}`) {
		t.Errorf("the fleet tenant was shed on the surviving worker; quotas leaked across tenants")
	}

	// The noisy tenant's quota must not have dented the fleet tenant:
	// the sweep still converges on the surviving workers, through the
	// still-faulting proxies.
	waitDeadline := time.Now().Add(4 * time.Minute)
	var final fleet.SweepStatus
	for {
		var ok bool
		final, ok = c.Status(id)
		if !ok {
			t.Fatalf("sweep %s lost", id)
		}
		if final.Terminal() {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("sweep never finished under the fault schedules: %+v", final)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.State != "done" || final.Failed != 0 {
		t.Fatalf("sweep state = %s with %d failed, want done with none lost: %+v",
			final.State, final.Failed, final)
	}

	// Byte-identical to the single-node reference: resets, flips and
	// partitions changed nothing about the science.
	ref, err := fleet.Reference(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if final.TableText != ref.String() {
		t.Errorf("fleet table is not byte-identical to the reference:\n--- fleet\n%s--- reference\n%s",
			final.TableText, ref.String())
	}

	// Every merge was digest-verified, and nothing corrupt slipped in.
	verified := c.Registry().Counter("fleet_digest_verified_total", "").Value()
	rejects := c.Registry().Counter("fleet_digest_rejects_total", "").Value()
	specRejects := c.Registry().Counter("fleet_spec_rejects_total", "").Value()
	if verified < int64(final.Total) {
		t.Errorf("fleet_digest_verified_total = %d, want >= %d (one per merged cell)", verified, final.Total)
	}
	t.Logf("chaos summary: %d cells, %d digest-verified, %d digest rejects, %d spec rejects, %d dispatch errors",
		final.Total, verified, rejects, specRejects,
		c.Registry().Counter("fleet_dispatch_errors_total", "").Value())
}
