package fleet

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
)

// Ledger is the coordinator's write-ahead cell log: every sweep
// admission and every cell transition the coordinator must not forget
// (lease, expiry, steal, done, failed) is appended — and fsync'd — as a
// CRC-32-enveloped JSON line before the transition is acknowledged
// anywhere else. Replaying the log reconstructs the sweep after a
// coordinator crash: done and failed cells keep their results, every
// other cell reverts to ready (an in-flight lease held by a dead
// coordinator is meaningless — exactly like a speculative, uncommitted
// value after a squash). A torn or corrupt tail is truncated away on
// open, never fatal. Same envelope idiom as internal/server's jobstore
// and internal/exp's sweep journal.
type Ledger struct {
	mu sync.Mutex
	f  *os.File

	// Truncated reports how many damaged tail records were dropped on
	// open.
	Truncated int
}

// Ledger record kinds. Done and Failed are the only terminal kinds;
// Lease, Expire and Steal exist so restart-surviving counters agree
// with the log (see Replay) and so an operator can audit exactly how a
// cell travelled the fleet.
const (
	recSweep  = "sweep"
	recLease  = "lease"
	recExpire = "expire"
	recSteal  = "steal"
	recDone   = "done"
	recFailed = "failed"
)

// LedgerRecord is one line's payload.
type LedgerRecord struct {
	Kind  string `json:"kind"`
	Sweep string `json:"sweep"`
	// Cell is the cell digest (empty on sweep records).
	Cell string `json:"cell,omitempty"`
	// Worker is the worker URL involved in a lease/steal/done/expire.
	Worker string `json:"worker,omitempty"`
	// Spec carries the normalized sweep spec on sweep records.
	Spec *SweepSpec `json:"spec,omitempty"`
	// Stats carries the cell result on done records.
	Stats *pipeline.Stats `json:"stats,omitempty"`
	// Reason carries the failure on failed records.
	Reason string `json:"reason,omitempty"`
}

// ledgerEnvelope wraps one record: Rec's exact bytes are CRC-protected,
// so a torn write or bit flip in either field fails validation.
type ledgerEnvelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Replay is the ledger's reconstructed view: what OpenLedger found.
type Replay struct {
	// Sweeps maps sweep ID to its normalized spec, in first-seen order
	// via Order.
	Sweeps map[string]SweepSpec
	Order  []string
	// Done maps sweep ID -> cell digest -> result.
	Done map[string]map[string]pipeline.Stats
	// Failed maps sweep ID -> cell digest -> failure reason.
	Failed map[string]map[string]string
	// Leases, Expiries, Steals count those records across the whole
	// log; the coordinator seeds its registry counters from them so
	// /metrics agrees with the ledger across restarts.
	Leases, Expiries, Steals int64
	// DuplicateDone counts done records for cells already done — always
	// zero unless a coordinator bug committed a cell twice.
	DuplicateDone int64
}

// LedgerPath is the cell ledger's location inside a state directory.
func LedgerPath(dir string) string { return filepath.Join(dir, "cells.jsonl") }

// OpenLedger opens (creating if absent) the ledger at path, replays
// every valid record into a Replay, and truncates any damaged tail.
func OpenLedger(path string) (*Ledger, *Replay, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, simerr.New("fleet", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, simerr.New("fleet", err)
	}
	l := &Ledger{f: f}
	rp := &Replay{
		Sweeps: map[string]SweepSpec{},
		Done:   map[string]map[string]pipeline.Stats{},
		Failed: map[string]map[string]string{},
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, simerr.New("fleet", err)
	}
	valid := 0 // byte offset past the last valid record
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break
		}
		rec, ok := parseLedgerLine(data[valid : valid+nl])
		if !ok {
			break
		}
		rp.apply(rec)
		valid += nl + 1
	}
	if valid < len(data) {
		l.Truncated = 1 + bytes.Count(data[valid:], []byte{'\n'})
		if data[len(data)-1] == '\n' {
			l.Truncated--
		}
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, simerr.New("fleet", err)
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, simerr.New("fleet", err)
	}
	return l, rp, nil
}

// parseLedgerLine validates one envelope line.
func parseLedgerLine(line []byte) (LedgerRecord, bool) {
	var rec LedgerRecord
	if len(bytes.TrimSpace(line)) == 0 {
		return rec, false
	}
	var env ledgerEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return rec, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return rec, false
	}
	if err := json.Unmarshal(env.Rec, &rec); err != nil || rec.Kind == "" || rec.Sweep == "" {
		return rec, false
	}
	return rec, true
}

// apply folds one replayed record into the view.
func (rp *Replay) apply(rec LedgerRecord) {
	switch rec.Kind {
	case recSweep:
		if rec.Spec == nil {
			return
		}
		if _, seen := rp.Sweeps[rec.Sweep]; !seen {
			rp.Order = append(rp.Order, rec.Sweep)
		}
		rp.Sweeps[rec.Sweep] = *rec.Spec
	case recLease:
		rp.Leases++
	case recExpire:
		rp.Expiries++
	case recSteal:
		rp.Steals++
	case recDone:
		if rec.Stats == nil {
			return
		}
		m := rp.Done[rec.Sweep]
		if m == nil {
			m = map[string]pipeline.Stats{}
			rp.Done[rec.Sweep] = m
		}
		if _, dup := m[rec.Cell]; dup {
			rp.DuplicateDone++
			return
		}
		m[rec.Cell] = *rec.Stats
		delete(rp.Failed[rec.Sweep], rec.Cell)
	case recFailed:
		if _, done := rp.Done[rec.Sweep][rec.Cell]; done {
			return
		}
		m := rp.Failed[rec.Sweep]
		if m == nil {
			m = map[string]string{}
			rp.Failed[rec.Sweep] = m
		}
		m[rec.Cell] = rec.Reason
	}
}

// Append records one transition, fsyncing before it returns: the
// write-ahead guarantee that makes a restarted coordinator resume
// instead of re-deciding.
func (l *Ledger) Append(rec LedgerRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return simerr.New("fleet", err)
	}
	line, err := json.Marshal(ledgerEnvelope{CRC: crc32.ChecksumIEEE(raw), Rec: raw})
	if err != nil {
		return simerr.New("fleet", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return simerr.New("fleet", err)
	}
	if err := l.f.Sync(); err != nil {
		return simerr.New("fleet", err)
	}
	return nil
}

// Close closes the underlying file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
