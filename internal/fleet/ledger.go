package fleet

import (
	"encoding/json"
	"path/filepath"
	"sync"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Ledger is the coordinator's write-ahead cell log: every sweep
// admission and every cell transition the coordinator must not forget
// (lease, expiry, steal, done, failed) is appended — and fsync'd —
// before the transition is acknowledged anywhere else. Replaying the
// log reconstructs the sweep after a coordinator crash: done and failed
// cells keep their results, every other cell reverts to ready (an
// in-flight lease held by a dead coordinator is meaningless — exactly
// like a speculative, uncommitted value after a squash).
//
// The durability mechanics — CRC envelope, fsync-per-append, torn-tail
// repair on open, interior-corruption refusal — live in internal/wal;
// this type is the fleet-shaped layer on top. The on-disk format is
// unchanged from the pre-engine ledger, so old state dirs resume.
type Ledger struct {
	mu sync.Mutex
	w  *wal.WAL

	// Truncated reports how many damaged tail records were dropped on
	// open.
	Truncated int
}

// Ledger record kinds. Done and Failed are the only terminal kinds;
// Lease, Expire and Steal exist so restart-surviving counters agree
// with the log (see Replay) and so an operator can audit exactly how a
// cell travelled the fleet.
const (
	recSweep  = "sweep"
	recLease  = "lease"
	recExpire = "expire"
	recSteal  = "steal"
	recDone   = "done"
	recFailed = "failed"
)

// LedgerRecord is one line's payload.
type LedgerRecord struct {
	Kind  string `json:"kind"`
	Sweep string `json:"sweep"`
	// Cell is the cell digest (empty on sweep records).
	Cell string `json:"cell,omitempty"`
	// Worker is the worker URL involved in a lease/steal/done/expire.
	Worker string `json:"worker,omitempty"`
	// Spec carries the normalized sweep spec on sweep records.
	Spec *SweepSpec `json:"spec,omitempty"`
	// Stats carries the cell result on done records.
	Stats *pipeline.Stats `json:"stats,omitempty"`
	// Reason carries the failure on failed records.
	Reason string `json:"reason,omitempty"`
}

// Replay is the ledger's reconstructed view: what OpenLedger found.
type Replay struct {
	// Sweeps maps sweep ID to its normalized spec, in first-seen order
	// via Order.
	Sweeps map[string]SweepSpec
	Order  []string
	// Done maps sweep ID -> cell digest -> result.
	Done map[string]map[string]pipeline.Stats
	// Failed maps sweep ID -> cell digest -> failure reason.
	Failed map[string]map[string]string
	// Leases, Expiries, Steals count those records across the whole
	// log; the coordinator seeds its registry counters from them so
	// /metrics agrees with the ledger across restarts.
	Leases, Expiries, Steals int64
	// DuplicateDone counts done records for cells already done — always
	// zero unless a coordinator bug committed a cell twice.
	DuplicateDone int64
}

// LedgerPath is the cell ledger's location inside a state directory.
func LedgerPath(dir string) string { return filepath.Join(dir, "cells.jsonl") }

// OpenLedger opens (creating if absent) the ledger at path, replays
// every valid record into a Replay, and repairs any torn tail, via the
// real filesystem.
func OpenLedger(path string) (*Ledger, *Replay, error) { return OpenLedgerFS(path, nil, nil) }

// OpenLedgerFS is OpenLedger through an explicit filesystem seam (nil
// means vfs.OS) with optional wal metrics.
func OpenLedgerFS(path string, fsys vfs.FS, met *wal.Metrics) (*Ledger, *Replay, error) {
	l := &Ledger{}
	rp := &Replay{
		Sweeps: map[string]SweepSpec{},
		Done:   map[string]map[string]pipeline.Stats{},
		Failed: map[string]map[string]string{},
	}
	w, err := wal.Open(path, wal.Options{FS: fsys, Name: "fleet", Metrics: met}, func(raw json.RawMessage) error {
		var rec LedgerRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		if rec.Kind == "" || rec.Sweep == "" {
			return simerr.Newf("fleet", "ledger record missing kind or sweep")
		}
		rp.apply(rec)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	l.w = w
	l.Truncated = w.Truncated
	return l, rp, nil
}

// apply folds one replayed record into the view.
func (rp *Replay) apply(rec LedgerRecord) {
	switch rec.Kind {
	case recSweep:
		if rec.Spec == nil {
			return
		}
		if _, seen := rp.Sweeps[rec.Sweep]; !seen {
			rp.Order = append(rp.Order, rec.Sweep)
		}
		rp.Sweeps[rec.Sweep] = *rec.Spec
	case recLease:
		rp.Leases++
	case recExpire:
		rp.Expiries++
	case recSteal:
		rp.Steals++
	case recDone:
		if rec.Stats == nil {
			return
		}
		m := rp.Done[rec.Sweep]
		if m == nil {
			m = map[string]pipeline.Stats{}
			rp.Done[rec.Sweep] = m
		}
		if _, dup := m[rec.Cell]; dup {
			rp.DuplicateDone++
			return
		}
		m[rec.Cell] = *rec.Stats
		delete(rp.Failed[rec.Sweep], rec.Cell)
	case recFailed:
		if _, done := rp.Done[rec.Sweep][rec.Cell]; done {
			return
		}
		m := rp.Failed[rec.Sweep]
		if m == nil {
			m = map[string]string{}
			rp.Failed[rec.Sweep] = m
		}
		m[rec.Cell] = rec.Reason
	}
}

// Append records one transition, fsyncing before it returns: the
// write-ahead guarantee that makes a restarted coordinator resume
// instead of re-deciding.
func (l *Ledger) Append(rec LedgerRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Append(rec)
}

// Probe checks that the ledger's storage still takes durable writes; a
// degraded coordinator calls this to decide the disk has come back.
func (l *Ledger) Probe() error { return l.w.Probe() }

// Close closes the underlying log.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Close()
}
