package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/server"
	"rvpsim/internal/testutil/leak"
)

// fakeWorker is an in-process stand-in for rvpd that implements just
// the slices of the job API the coordinator uses: idempotency-keyed
// submission, status polls, and /readyz. Its mode decides how jobs
// behave:
//
//	done  — every status poll reports success with digest-derived stats
//	hang  — jobs stay running forever (a live straggler)
//	mute  — status polls return 500 (a wedged or partitioned worker)
type fakeWorker struct {
	ts *httptest.Server

	mu          sync.Mutex
	mode        string
	draining    bool
	jobs        map[string]exp.JobSpec // id -> spec
	byKey       map[string]string
	submissions int
}

func newFakeWorker(mode string) *fakeWorker {
	w := &fakeWorker{mode: mode, jobs: map[string]exp.JobSpec{}, byKey: map[string]string{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", w.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", w.status)
	mux.HandleFunc("GET /readyz", w.readyz)
	w.ts = httptest.NewServer(mux)
	return w
}

func (w *fakeWorker) setMode(m string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mode = m
}

func (w *fakeWorker) setDraining(d bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.draining = d
}

func (w *fakeWorker) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.submissions
}

func (w *fakeWorker) submit(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		rw.Header().Set("Retry-After", "1")
		rw.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(rw).Encode(map[string]string{"error": "draining"})
		return
	}
	var spec exp.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		rw.WriteHeader(http.StatusBadRequest)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	id, known := w.byKey[key]
	if !known {
		w.submissions++
		id = fmt.Sprintf("fj-%d", w.submissions)
		w.byKey[key] = id
		w.jobs[id] = spec
	}
	code := http.StatusAccepted
	if known {
		code = http.StatusOK
	}
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(server.JobStatus{ID: id, Key: key, State: server.StateQueued, Spec: spec})
}

func (w *fakeWorker) status(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	spec, ok := w.jobs[r.PathValue("id")]
	if !ok {
		rw.WriteHeader(http.StatusNotFound)
		json.NewEncoder(rw).Encode(map[string]string{"error": "unknown job"})
		return
	}
	switch w.mode {
	case "mute":
		rw.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(rw).Encode(map[string]string{"error": "wedged"})
	case "hang":
		json.NewEncoder(rw).Encode(server.JobStatus{ID: r.PathValue("id"), State: server.StateRunning, Spec: spec})
	case "fail":
		json.NewEncoder(rw).Encode(server.JobStatus{
			ID: r.PathValue("id"), State: server.StateFailed, Spec: spec,
			Error: &server.ErrorInfo{Message: "injected failure"},
		})
	case "tamper":
		// A corrupted-in-transit result: sealed over the true stats, then
		// the stats mutated. The digest no longer matches the envelope.
		st := fakeStats(spec.Digest())
		res := exp.JobResult{Stats: &st}
		res.Seal()
		st.Cycles++
		json.NewEncoder(rw).Encode(server.JobStatus{
			ID: r.PathValue("id"), State: server.StateSucceeded, Spec: spec,
			Result: &res,
		})
	case "sealed":
		st := fakeStats(spec.Digest())
		res := exp.JobResult{Stats: &st}
		res.Seal()
		json.NewEncoder(rw).Encode(server.JobStatus{
			ID: r.PathValue("id"), State: server.StateSucceeded, Spec: spec,
			Result: &res,
		})
	default: // done
		st := fakeStats(spec.Digest())
		json.NewEncoder(rw).Encode(server.JobStatus{
			ID: r.PathValue("id"), State: server.StateSucceeded, Spec: spec,
			Result: &exp.JobResult{Stats: &st},
		})
	}
}

func (w *fakeWorker) readyz(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		rw.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(rw).Encode(map[string]any{"ready": !w.draining, "draining": w.draining})
}

// testCoord opens a coordinator with test-speed timing.
func testCoord(t *testing.T, dir string, urls ...string) *Coordinator {
	t.Helper()
	c, err := Open(Config{
		StateDir:     dir,
		Workers:      urls,
		Lease:        400 * time.Millisecond,
		Heartbeat:    40 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		StealAge:     120 * time.Millisecond,
		CellAttempts: 2,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func coordSweep(t *testing.T, c *Coordinator) (SweepSpec, string) {
	t.Helper()
	spec := SweepSpec{Workloads: []string{"go", "li"}, Predictors: []string{"rvp", "none"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	// Status echoes the normalized identity; rebuild it for expectations.
	spec.Normalize(c.cfg.DefaultInsts)
	if st.ID != spec.ID() {
		t.Fatalf("sweep ID = %s, want %s", st.ID, spec.ID())
	}
	return spec, st.ID
}

func TestCoordinatorCompletesSweepAndMergeMatches(t *testing.T) {
	leak.Check(t)
	w1, w2 := newFakeWorker("done"), newFakeWorker("done")
	defer w1.ts.Close()
	defer w2.ts.Close()
	c := testCoord(t, t.TempDir(), w1.ts.URL, w2.ts.URL)
	defer c.Stop()

	spec, id := coordSweep(t, c)
	waitFor(t, "sweep done", func() bool {
		st, _ := c.Status(id)
		return st.Terminal()
	})
	st, _ := c.Status(id)
	if st.State != "done" || st.Done != 4 || st.Failed != 0 {
		t.Fatalf("status = %+v, want done 4/0", st)
	}
	// The merged table must match a merge of the same digest-derived
	// stats computed locally — the fleet added nothing and lost nothing.
	if want := expectedTable(spec); st.TableText != want {
		t.Errorf("fleet table differs from local merge:\n--- fleet\n%s--- local\n%s", st.TableText, want)
	}
	if got := c.Registry().Counter("fleet_cells_done_total", "").Value(); got != 4 {
		t.Errorf("fleet_cells_done_total = %d, want 4", got)
	}
}

// expectedTable merges the same digest-derived fake stats the fake
// workers serve — the local reference for what the fleet assembles.
func expectedTable(spec SweepSpec) string {
	done := map[string]pipeline.Stats{}
	for _, cell := range spec.Cells() {
		done[cell.ID] = fakeStats(cell.ID)
	}
	return MergeTable(spec, done, nil).String()
}

func TestSweepSubmissionIdempotent(t *testing.T) {
	leak.Check(t)
	w := newFakeWorker("done")
	defer w.ts.Close()
	c := testCoord(t, t.TempDir(), w.ts.URL)
	defer c.Stop()

	_, id := coordSweep(t, c)
	st2, err := c.SubmitSweep(SweepSpec{Workloads: []string{"go", "li"}, Predictors: []string{"rvp", "none"}, Insts: 5_000})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.ID != id {
		t.Errorf("resubmission forked a new sweep: %s vs %s", st2.ID, id)
	}
	if got := c.Sweeps(); len(got) != 1 {
		t.Errorf("sweeps = %v, want exactly one", got)
	}
}

func TestLeaseExpiryReassignsDeadWorkersCell(t *testing.T) {
	leak.Check(t)
	// A wedged worker accepts the dispatch, then answers every status
	// poll with 500: no heartbeat, so the janitor must expire the lease.
	w := newFakeWorker("mute")
	defer w.ts.Close()
	c := testCoord(t, t.TempDir(), w.ts.URL)
	defer c.Stop()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	expiries := c.Registry().Counter("fleet_lease_expiries_total", "")
	waitFor(t, "a lease expiry", func() bool { return expiries.Value() >= 1 })

	// The worker recovers; the re-leased cell must now complete.
	w.setMode("done")
	waitFor(t, "sweep done after recovery", func() bool {
		got, _ := c.Status(st.ID)
		return got.State == "done"
	})
	if got := c.Registry().Counter("fleet_leases_total", "").Value(); got < 2 {
		t.Errorf("fleet_leases_total = %d, want >= 2 (original + re-lease)", got)
	}
	got, _ := c.Status(st.ID)
	if got.Done != 1 || got.Failed != 0 {
		t.Errorf("status = %+v, want exactly one done cell", got)
	}
}

func TestIdleWorkerStealsFromStraggler(t *testing.T) {
	leak.Check(t)
	// A hanging worker heartbeats forever (its lease never expires), so
	// only the steal path can unstick the cell.
	slow := newFakeWorker("hang")
	defer slow.ts.Close()
	dir := t.TempDir()
	c, err := Open(Config{
		StateDir:     dir,
		Workers:      []string{slow.ts.URL},
		Lease:        time.Hour, // expiry must not be the rescue
		Heartbeat:    40 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		StealAge:     120 * time.Millisecond,
		CellAttempts: 2,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Stop()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	waitFor(t, "straggler to hold the lease", func() bool {
		got, _ := c.Status(st.ID)
		return got.Leased == 1
	})
	fast := newFakeWorker("done")
	defer fast.ts.Close()
	if err := c.AddWorker(fast.ts.URL); err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	waitFor(t, "sweep done via steal", func() bool {
		got, _ := c.Status(st.ID)
		return got.State == "done"
	})
	if got := c.Registry().Counter("fleet_steals_total", "").Value(); got < 1 {
		t.Errorf("fleet_steals_total = %d, want >= 1", got)
	}
	got, _ := c.Status(st.ID)
	if got.Done != 1 {
		t.Errorf("done = %d, want exactly 1 (no double count)", got.Done)
	}
	if fast.count() == 0 {
		t.Errorf("the thief never received the stolen cell")
	}
}

func TestDrainingWorkerIsNotAssignedCells(t *testing.T) {
	leak.Check(t)
	draining := newFakeWorker("done")
	draining.setDraining(true)
	healthy := newFakeWorker("done")
	defer draining.ts.Close()
	defer healthy.ts.Close()
	c := testCoord(t, t.TempDir(), draining.ts.URL, healthy.ts.URL)
	defer c.Stop()

	_, id := coordSweep(t, c)
	waitFor(t, "sweep done", func() bool {
		got, _ := c.Status(id)
		return got.Terminal()
	})
	if n := draining.count(); n != 0 {
		t.Errorf("draining worker received %d submissions, want 0", n)
	}
	got, _ := c.Status(id)
	for _, w := range got.Workers {
		if w.URL == draining.ts.URL {
			if !w.Draining || w.Live {
				t.Errorf("draining worker reported as %+v", w)
			}
		}
	}
}

func TestCoordinatorRestartResumesFromLedger(t *testing.T) {
	leak.Check(t)
	w := newFakeWorker("done")
	defer w.ts.Close()
	dir := t.TempDir()
	c := testCoord(t, dir, w.ts.URL)

	spec, id := coordSweep(t, c)
	waitFor(t, "sweep done", func() bool {
		got, _ := c.Status(id)
		return got.Terminal()
	})
	first, _ := c.Status(id)
	leases := c.Registry().Counter("fleet_leases_total", "").Value()
	c.Stop()
	submissionsBefore := w.count()

	// Reopen on the same state dir with no workers at all: everything
	// must come back from the ledger alone, with counters intact.
	c2, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Stop()
	got, ok := c2.Status(id)
	if !ok {
		t.Fatalf("sweep %s lost across restart", id)
	}
	if got.State != "done" || got.Done != first.Done {
		t.Fatalf("restarted status = %+v, want done %d", got, first.Done)
	}
	if got.TableText != first.TableText {
		t.Errorf("table changed across restart:\n--- before\n%s--- after\n%s", first.TableText, got.TableText)
	}
	if got.TableText != expectedTable(spec) {
		t.Errorf("restarted table differs from local merge")
	}
	if seeded := c2.Registry().Counter("fleet_leases_total", "").Value(); seeded != leases {
		t.Errorf("lease counter = %d after restart, ledger says %d", seeded, leases)
	}
	if w.count() != submissionsBefore {
		t.Errorf("restart re-ran finished cells: %d -> %d submissions", submissionsBefore, w.count())
	}
}

func TestFailingCellRetriesThenFailsTerminally(t *testing.T) {
	leak.Check(t)
	// A worker whose jobs always fail: the cell must burn its attempts
	// and land terminally failed, and the sweep must end partial with
	// the failure footnoted in the table.
	w := newFakeWorker("fail")
	defer w.ts.Close()
	c := testCoord(t, t.TempDir(), w.ts.URL)
	defer c.Stop()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	waitFor(t, "sweep terminal", func() bool {
		got, _ := c.Status(st.ID)
		return got.Terminal()
	})
	got, _ := c.Status(st.ID)
	if got.State != "partial" || got.Failed != 1 {
		t.Fatalf("status = %+v, want partial with 1 failed", got)
	}
	if got.TableText == "" {
		t.Fatalf("partial sweep has no table")
	}
	if retries := c.Registry().Counter("fleet_cell_retries_total", "").Value(); retries != 1 {
		t.Errorf("fleet_cell_retries_total = %d, want 1 (2 attempts)", retries)
	}
}
