package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"rvpsim/internal/obs"
	"rvpsim/internal/simerr"
)

// Handler exposes the coordinator's HTTP API:
//
//	POST /v1/sweeps        submit a SweepSpec (idempotent by sweep ID)
//	GET  /v1/sweeps        list sweep IDs in admission order
//	GET  /v1/sweeps/{id}   one sweep's status (+ merged table when done)
//	POST /v1/workers       register a worker {"url": "http://..."}
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 + storage_degraded while the disk is failing)
//	GET  /metrics          fleet gauges and counters (Prometheus text)
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec SweepSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		st, err := c.SubmitSweep(spec)
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, simerr.ErrConfig):
				code = http.StatusBadRequest
			case errors.Is(err, ErrStorageDegraded):
				// Degraded, not dead: shed with a retry hint so clients
				// back off and resubmit once the disk recovers.
				code = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", strconv.Itoa(int(2*c.cfg.StorageProbeEvery/time.Second)+1))
			}
			httpJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		httpJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, c.Sweeps())
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Status(r.PathValue("id"))
		if !ok {
			httpJSON(w, http.StatusNotFound, map[string]string{"error": "unknown sweep"})
			return
		}
		httpJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		if err := c.AddWorker(body.URL); err != nil {
			httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		httpJSON(w, http.StatusOK, map[string]string{"registered": body.URL})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		degraded := c.StorageDegraded()
		code := http.StatusOK
		if degraded {
			code = http.StatusServiceUnavailable
		}
		httpJSON(w, code, map[string]bool{"ready": !degraded, "storage_degraded": degraded})
	})
	mux.Handle("GET /metrics", obs.Handler(c.Registry()))
	return mux
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
