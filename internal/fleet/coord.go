package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/server"
	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Config sizes the coordinator. Zero values take the documented
// defaults.
type Config struct {
	// StateDir holds the cell ledger (required: it is what makes an
	// accepted sweep survive coordinator restarts).
	StateDir string
	// Workers are the initial rvpd base URLs; more can register later
	// via AddWorker or POST /v1/workers.
	Workers []string
	// Lease is how long a worker may hold a cell between heartbeat
	// renewals before the cell is reassigned (default 10s).
	Lease time.Duration
	// Heartbeat is the status-poll cadence that renews leases (default
	// Lease/4).
	Heartbeat time.Duration
	// Poll is the idle scheduler's retry cadence when no cell is ready
	// (default 50ms).
	Poll time.Duration
	// StealAge is the minimum age of a lease before an idle worker may
	// steal it (default 2×Heartbeat).
	StealAge time.Duration
	// CellAttempts bounds how many times a cell that fails on a worker
	// (a real job failure, not an infrastructure error) is retried
	// before the cell is marked failed (default 3).
	CellAttempts int
	// SubmitAttempts bounds per-dispatch submission attempts (default 5).
	SubmitAttempts int
	// DefaultInsts is the per-cell budget for sweeps that omit one
	// (default 2M).
	DefaultInsts uint64
	// Backoff shapes dispatch retries (default: client.DefaultBackoff
	// capped at 2s so retries stay well inside a lease).
	Backoff client.Backoff
	// HTTPTimeout bounds every single worker HTTP call (default: Lease,
	// so one hung call can never outlive the lease it renews).
	HTTPTimeout time.Duration
	// Registry receives fleet metrics (fresh if nil).
	Registry *obs.Registry
	// Logger receives structured lifecycle logs; nil discards them.
	Logger *slog.Logger
	// FS is the filesystem seam the cell ledger goes through. Nil means
	// the real filesystem; tests inject vfs.Mem/vfs.Fault to simulate
	// hostile storage.
	FS vfs.FS
	// StorageProbeEvery is how often a storage-degraded coordinator
	// probes the disk for recovery (default 2s).
	StorageProbeEvery time.Duration
	// Transport, when set, builds the HTTP transport for each worker's
	// client (nil uses the default transport). It is the network fault
	// seam: chaos tests wrap every worker's dispatch path in a
	// netfault injector without touching the worker process.
	Transport func(workerURL string) http.RoundTripper
	// Tenant stamps every dispatch with X-Rvp-Tenant so the fleet's
	// load is attributed (and quota'd) under its own bucket on the
	// workers (empty: the workers' default tenant).
	Tenant string
}

func (c *Config) setDefaults() error {
	if c.StateDir == "" {
		return simerr.Newf("fleet", "Config.StateDir is required: %v", simerr.ErrConfig)
	}
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.Lease / 4
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.StealAge <= 0 {
		c.StealAge = 2 * c.Heartbeat
	}
	if c.CellAttempts <= 0 {
		c.CellAttempts = 3
	}
	if c.SubmitAttempts <= 0 {
		c.SubmitAttempts = 5
	}
	if c.DefaultInsts == 0 {
		c.DefaultInsts = 2_000_000
	}
	if c.Backoff == (client.Backoff{}) {
		c.Backoff = client.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2}
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = c.Lease
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.StorageProbeEvery <= 0 {
		c.StorageProbeEvery = 2 * time.Second
	}
	return nil
}

// ErrStorageDegraded is returned by SubmitSweep while the coordinator
// cannot persist ledger appends: the HTTP layer maps it to 503 +
// Retry-After so clients back off instead of losing sweeps.
var ErrStorageDegraded = errors.New("fleet: storage degraded, not accepting sweeps")

// Cell states inside the coordinator.
const (
	cellReady  = "ready"
	cellLeased = "leased"
	cellDone   = "done"
	cellFailed = "failed"
)

// cellState is one cell's scheduling state. tok is the lease token:
// every (re)assignment increments it, so a worker whose lease was
// expired or stolen fails its next renewal instead of racing the new
// owner. Results, by contrast, are welcome from anyone — they are
// deterministic — so complete() keys on cell identity, not tokens.
type cellState struct {
	sweepID string
	id      string
	spec    Cell

	state    string
	worker   string
	tok      uint64
	started  time.Time // current lease start (steal-age clock)
	expiry   time.Time
	attempts int
}

// sweepState tracks one sweep end to end.
type sweepState struct {
	id             string
	spec           SweepSpec
	cells          map[string]*cellState
	ready          []string // cell IDs; stale entries skipped on pop
	total          int
	doneN, failedN int
	done           map[string]pipeline.Stats
	failed         map[string]string
	tableText      string // cached render once complete
}

func (sw *sweepState) complete() bool { return sw.doneN+sw.failedN == sw.total }

// workerState is one registered rvpd.
type workerState struct {
	url      string
	cl       *client.Client
	live     bool
	draining bool
	leased   int
	doneN    int64
}

// WorkerStatus is the wire view of one worker.
type WorkerStatus struct {
	URL      string `json:"url"`
	Live     bool   `json:"live"`
	Draining bool   `json:"draining"`
	Leased   int    `json:"leased"`
	Done     int64  `json:"done"`
}

// SweepStatus is the wire view of one sweep.
type SweepStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"` // running, done, partial
	Total  int    `json:"total"`
	Ready  int    `json:"ready"`
	Leased int    `json:"leased"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Steals and LeaseExpiries are coordinator-wide counters (they also
	// appear in /metrics and, record by record, in the ledger).
	Steals        int64 `json:"steals"`
	LeaseExpiries int64 `json:"lease_expiries"`
	// TableText is the merged result table, present once every cell is
	// terminal.
	TableText string         `json:"table_text,omitempty"`
	Workers   []WorkerStatus `json:"workers,omitempty"`
}

// Terminal reports whether the sweep has finished (all cells terminal).
func (s SweepStatus) Terminal() bool { return s.State != "running" }

// Coordinator shards sweeps into cells and drives them across the
// worker fleet. See the package comment for the robustness contract.
type Coordinator struct {
	cfg    Config
	reg    *obs.Registry
	log    *slog.Logger
	ledger *Ledger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup

	mu      sync.Mutex
	sweeps  map[string]*sweepState
	order   []string
	workers map[string]*workerState
	worder  []string
	leases  map[string]*cellState // sweepID+"/"+cellID -> leased cells only

	// storageDegraded is set when a ledger append fails: the
	// coordinator stops admitting sweeps (503 + Retry-After, /readyz
	// not ready) instead of crashing, keeps already-admitted cells
	// schedulable, and the janitor's probe clears the flag when the
	// disk takes durable writes again.
	storageDegraded atomic.Bool

	mLeases, mExpiries, mSteals     *obs.Counter
	mCellsDone, mCellsFailed        *obs.Counter
	mCellRetries, mDispatchErrors   *obs.Counter
	mShedStorage                    *obs.Counter
	mDigestVerified, mDigestRejects *obs.Counter
	mSpecRejects                    *obs.Counter
	gWorkersLive, gWorkersTotal     *obs.Gauge
	gReady, gLeased, gDone, gFailed *obs.Gauge
	gStorageDegraded                *obs.Gauge
}

// Open opens the state directory, replays the cell ledger — finished
// cells stay finished, everything else returns to ready — seeds the
// metrics counters from the replayed log so /metrics agrees with the
// ledger across restarts, and starts one dispatch loop per configured
// worker plus the lease janitor.
func Open(cfg Config) (*Coordinator, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ledger, rp, err := OpenLedgerFS(LedgerPath(cfg.StateDir), cfg.FS, wal.NewMetrics(cfg.Registry))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Registry,
		log:     cfg.Logger,
		ledger:  ledger,
		stop:    make(chan struct{}),
		sweeps:  map[string]*sweepState{},
		workers: map[string]*workerState{},
		leases:  map[string]*cellState{},
	}
	c.baseCtx, c.baseCancel = context.WithCancel(context.Background())
	c.initMetrics()
	if ledger.Truncated > 0 {
		c.log.Warn("ledger: dropped damaged tail records", "count", ledger.Truncated)
	}

	// Replay: rebuild every sweep. A lease held by the dead coordinator
	// is speculative state that never committed — squash it back to
	// ready, exactly like a mispredicted value.
	c.mLeases.Add(rp.Leases)
	c.mExpiries.Add(rp.Expiries)
	c.mSteals.Add(rp.Steals)
	for _, sid := range rp.Order {
		spec := rp.Sweeps[sid]
		sw := c.newSweepLocked(sid, spec)
		for id, st := range rp.Done[sid] {
			if cell, ok := sw.cells[id]; ok && cell.state == cellReady {
				cell.state = cellDone
				sw.done[id] = st
				sw.doneN++
			}
		}
		for id, why := range rp.Failed[sid] {
			if cell, ok := sw.cells[id]; ok && cell.state == cellReady {
				cell.state = cellFailed
				sw.failed[id] = why
				sw.failedN++
			}
		}
		// Rebuild the ready queue without the replayed terminals.
		sw.ready = sw.ready[:0]
		for _, cell := range sw.cellsInDigestOrder() {
			if cell.state == cellReady {
				sw.ready = append(sw.ready, cell.id)
			}
		}
		c.mCellsDone.Add(int64(sw.doneN))
		c.mCellsFailed.Add(int64(sw.failedN))
		c.log.Info("sweep recovered", "sweep", sid, "done", sw.doneN,
			"failed", sw.failedN, "remaining", len(sw.ready))
	}
	c.refreshGauges()

	c.wg.Add(1)
	go c.janitor()
	for _, url := range cfg.Workers {
		if err := c.AddWorker(url); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

func (c *Coordinator) initMetrics() {
	c.mLeases = c.reg.Counter("fleet_leases_total", "cell leases granted to workers")
	c.mExpiries = c.reg.Counter("fleet_lease_expiries_total", "leases expired and returned to the ready set")
	c.mSteals = c.reg.Counter("fleet_steals_total", "straggler leases stolen by idle workers")
	c.mCellsDone = c.reg.Counter("fleet_cells_done_total", "cells committed to the ledger as done")
	c.mCellsFailed = c.reg.Counter("fleet_cells_failed_total", "cells committed to the ledger as failed")
	c.mCellRetries = c.reg.Counter("fleet_cell_retries_total", "failed cell attempts returned to the ready set")
	c.mDispatchErrors = c.reg.Counter("fleet_dispatch_errors_total", "dispatches abandoned on transport/submission errors")
	c.mShedStorage = c.reg.Counter("fleet_shed_storage_total", "sweep submissions shed while storage-degraded (503)")
	c.mDigestVerified = c.reg.Counter("fleet_digest_verified_total", "cell results whose envelope digest verified before merge")
	c.mDigestRejects = c.reg.Counter("fleet_digest_rejects_total", "cell results rejected for an envelope digest mismatch (corrupted in transit)")
	c.mSpecRejects = c.reg.Counter("fleet_spec_rejects_total", "dispatches released because the worker echoed a different spec digest (request corrupted in transit)")
	c.gWorkersLive = c.reg.Gauge("fleet_workers_live", "registered workers currently answering /readyz")
	c.gWorkersTotal = c.reg.Gauge("fleet_workers_total", "registered workers")
	c.gReady = c.reg.Gauge("fleet_cells_ready", "cells waiting for a worker")
	c.gLeased = c.reg.Gauge("fleet_cells_leased", "cells currently leased to workers")
	c.gDone = c.reg.Gauge("fleet_cells_done", "cells finished successfully")
	c.gFailed = c.reg.Gauge("fleet_cells_failed", "cells terminally failed")
	c.gStorageDegraded = c.reg.Gauge("fleet_storage_degraded", "1 while ledger appends are failing and sweep admission is shed")
}

// noteStorageFailure flips the coordinator into storage-degraded mode
// after a failed ledger append: sweep admission sheds with 503 while
// already-admitted cells stay schedulable (their leases and results
// simply wait for a durable ledger), and the janitor's probe restores
// service when the disk recovers.
func (c *Coordinator) noteStorageFailure(err error) {
	if c.storageDegraded.CompareAndSwap(false, true) {
		c.gStorageDegraded.Set(1)
		c.log.Error("storage degraded: ledger append failed; shedding sweep admission until the disk recovers", "error", err)
	}
}

// StorageDegraded reports whether the coordinator is currently shedding
// sweep admission because its ledger cannot take durable appends.
func (c *Coordinator) StorageDegraded() bool { return c.storageDegraded.Load() }

// newSweepLocked builds the sweep state with every cell ready, in
// digest order. Caller holds c.mu (or is single-threaded in Open).
func (c *Coordinator) newSweepLocked(id string, spec SweepSpec) *sweepState {
	cells := spec.Cells()
	sw := &sweepState{
		id:     id,
		spec:   spec,
		cells:  make(map[string]*cellState, len(cells)),
		total:  len(cells),
		done:   map[string]pipeline.Stats{},
		failed: map[string]string{},
	}
	for _, cell := range cells {
		sw.cells[cell.ID] = &cellState{sweepID: id, id: cell.ID, spec: cell, state: cellReady}
		sw.ready = append(sw.ready, cell.ID)
	}
	c.sweeps[id] = sw
	c.order = append(c.order, id)
	return sw
}

// cellsInDigestOrder returns the sweep's cells in canonical order.
func (sw *sweepState) cellsInDigestOrder() []*cellState {
	out := make([]*cellState, 0, len(sw.cells))
	for _, cell := range sw.spec.Cells() {
		out = append(out, sw.cells[cell.ID])
	}
	return out
}

// refreshGauges recomputes the cell gauges from scratch. Caller holds
// c.mu.
func (c *Coordinator) refreshGauges() {
	var ready, leased, done, failed, live int
	for _, sw := range c.sweeps {
		for _, cell := range sw.cells {
			switch cell.state {
			case cellReady:
				ready++
			case cellLeased:
				leased++
			case cellDone:
				done++
			case cellFailed:
				failed++
			}
		}
	}
	for _, w := range c.workers {
		if w.live {
			live++
		}
	}
	c.gReady.Set(int64(ready))
	c.gLeased.Set(int64(leased))
	c.gDone.Set(int64(done))
	c.gFailed.Set(int64(failed))
	c.gWorkersLive.Set(int64(live))
	c.gWorkersTotal.Set(int64(len(c.workers)))
}

// AddWorker registers an rvpd base URL and starts its dispatch loop.
// Registering an already-known URL is a no-op.
func (c *Coordinator) AddWorker(url string) error {
	if url == "" {
		return simerr.Newf("fleet", "empty worker URL: %v", simerr.ErrConfig)
	}
	c.mu.Lock()
	if _, ok := c.workers[url]; ok {
		c.mu.Unlock()
		return nil
	}
	hc := &http.Client{Timeout: c.cfg.HTTPTimeout}
	if c.cfg.Transport != nil {
		hc.Transport = c.cfg.Transport(url)
	}
	w := &workerState{
		url: url,
		cl: client.New(url,
			client.WithBackoff(c.cfg.Backoff),
			client.WithMaxAttempts(c.cfg.SubmitAttempts),
			client.WithMaxElapsed(c.cfg.Lease),
			client.WithHTTPClient(hc),
			client.WithTenant(c.cfg.Tenant),
			client.WithLogger(c.log.With("worker", url))),
	}
	c.workers[url] = w
	c.worder = append(c.worder, url)
	c.gWorkersTotal.Set(int64(len(c.workers)))
	c.mu.Unlock()
	c.log.Info("worker registered", "worker", url)
	c.wg.Add(1)
	go c.workerLoop(w)
	return nil
}

// SubmitSweep admits one sweep. Submission is idempotent by sweep ID
// (the digest of the normalized spec): resubmitting the same spec joins
// the existing sweep instead of forking a duplicate.
func (c *Coordinator) SubmitSweep(spec SweepSpec) (SweepStatus, error) {
	spec.Normalize(c.cfg.DefaultInsts)
	if err := spec.Validate(); err != nil {
		return SweepStatus{}, err
	}
	id := spec.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sweeps[id]; !ok {
		// Admission requires a durable ledger; resubmitting a known
		// sweep is still answered from memory while degraded.
		if c.storageDegraded.Load() {
			c.mShedStorage.Inc()
			return SweepStatus{}, ErrStorageDegraded
		}
		// Write-ahead: the sweep is durable before it is acknowledged.
		sp := spec
		if err := c.ledger.Append(LedgerRecord{Kind: recSweep, Sweep: id, Spec: &sp}); err != nil {
			c.noteStorageFailure(err)
			c.mShedStorage.Inc()
			return SweepStatus{}, fmt.Errorf("%w: %w", ErrStorageDegraded, err)
		}
		sw := c.newSweepLocked(id, spec)
		c.refreshGauges()
		c.log.Info("sweep accepted", "sweep", id, "cells", sw.total)
	}
	return c.statusLocked(id), nil
}

// Status reports one sweep (false when unknown).
func (c *Coordinator) Status(id string) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sweeps[id]; !ok {
		return SweepStatus{}, false
	}
	return c.statusLocked(id), true
}

// Sweeps lists known sweep IDs in admission order.
func (c *Coordinator) Sweeps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

func (c *Coordinator) statusLocked(id string) SweepStatus {
	sw := c.sweeps[id]
	st := SweepStatus{
		ID: id, State: "running", Total: sw.total,
		Done: sw.doneN, Failed: sw.failedN,
		Steals:        c.mSteals.Value(),
		LeaseExpiries: c.mExpiries.Value(),
	}
	for _, cell := range sw.cells {
		switch cell.state {
		case cellReady:
			st.Ready++
		case cellLeased:
			st.Leased++
		}
	}
	if sw.complete() {
		if sw.failedN == 0 {
			st.State = "done"
		} else {
			st.State = "partial"
		}
		if sw.tableText == "" {
			sw.tableText = MergeTable(sw.spec, sw.done, sw.failed).String()
		}
		st.TableText = sw.tableText
	}
	for _, url := range c.worder {
		w := c.workers[url]
		st.Workers = append(st.Workers, WorkerStatus{
			URL: w.url, Live: w.live, Draining: w.draining, Leased: w.leased, Done: w.doneN,
		})
	}
	return st
}

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Stop halts dispatching and the janitor, cancels in-flight polling,
// and closes the ledger. Leased cells are simply abandoned: they were
// never committed, so a later Open (or another coordinator) re-runs
// them from ready — the ledger already holds everything that finished.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.baseCancel()
	})
	c.wg.Wait()
	if err := c.ledger.Close(); err != nil {
		c.cfg.Logger.Warn("closing ledger", "error", err)
	}
}

// leaseRef is a worker loop's claim on one cell. The token pins the
// exact lease generation: state mutations check it, result commits do
// not (results are deterministic and welcome from stale owners).
type leaseRef struct {
	sweepID, cellID string
	tok             uint64
	spec            Cell
	key             string
}

// janitor expires overdue leases: the cell goes back to the ready set,
// the token bumps so the stale owner's renewals fail, and the expiry is
// ledgered and counted. This is the squash path — losing a worker
// mid-cell must never lose the cell.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.expireOverdue(time.Now())
			c.probeStorage()
		}
	}
}

// probeStorage checks a degraded coordinator's disk and restores sweep
// admission once durable writes succeed again. The janitor's ticker
// drives it; Heartbeat and StorageProbeEvery are both short, so the
// sooner of the two cadences applies in practice.
func (c *Coordinator) probeStorage() {
	if !c.storageDegraded.Load() {
		return
	}
	if err := c.ledger.Probe(); err != nil {
		c.log.Debug("storage probe failed; staying degraded", "error", err)
		return
	}
	c.storageDegraded.Store(false)
	c.gStorageDegraded.Set(0)
	c.log.Info("storage recovered: accepting sweeps again")
}

func (c *Coordinator) expireOverdue(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, cell := range c.leases {
		if now.Before(cell.expiry) {
			continue
		}
		sw := c.sweeps[cell.sweepID]
		if err := c.ledger.Append(LedgerRecord{
			Kind: recExpire, Sweep: cell.sweepID, Cell: cell.id, Worker: cell.worker,
		}); err != nil {
			c.log.Error("ledgering lease expiry failed", "cell", cell.id, "error", err)
			c.noteStorageFailure(err)
			continue
		}
		c.log.Warn("lease expired; cell returns to ready", "sweep", cell.sweepID,
			"cell", cell.id, "worker", cell.worker)
		if w := c.workers[cell.worker]; w != nil {
			w.leased--
		}
		cell.state = cellReady
		cell.worker = ""
		cell.tok++
		sw.ready = append(sw.ready, cell.id)
		delete(c.leases, key)
		c.mExpiries.Inc()
		c.refreshGauges()
	}
}

// workerLoop drives one worker: probe readiness, take (or steal) a
// cell, run it to a terminal state, repeat.
func (c *Coordinator) workerLoop(w *workerState) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		ready := c.probe(w)
		if !ready {
			if !c.sleep(c.cfg.Heartbeat) {
				return
			}
			continue
		}
		ref, ok := c.takeCell(w)
		if !ok {
			if !c.sleep(c.cfg.Poll) {
				return
			}
			continue
		}
		c.runCell(w, ref)
	}
}

// sleep waits d or until Stop; false means stopping.
func (c *Coordinator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.stop:
		return false
	case <-t.C:
		return true
	}
}

// readyzBody is the slice of rvpd's /readyz payload the coordinator
// reads.
type readyzBody struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

// probe asks the worker's /readyz whether it should receive work. A
// draining worker (SIGTERM in progress) answers 503 with Draining:true
// and is deliberately left alone: its in-flight jobs will checkpoint
// and requeue on its own state dir, and this coordinator's lease expiry
// re-runs the cell elsewhere.
func (c *Coordinator) probe(w *workerState) bool {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HTTPTimeout)
	defer cancel()
	body, err := w.cl.CheckEndpoint(ctx, "/readyz")
	var rb readyzBody
	parsed := json.Unmarshal([]byte(body), &rb) == nil
	live := err == nil && parsed && rb.Ready
	draining := parsed && rb.Draining

	c.mu.Lock()
	changed := w.live != live || w.draining != draining
	w.live, w.draining = live, draining
	c.refreshGauges()
	c.mu.Unlock()
	if changed {
		c.log.Info("worker state", "worker", w.url, "live", live, "draining", draining)
	}
	return live
}

// takeCell pops the next ready cell in admission-then-digest order, or
// — when nothing is ready but the fleet is not finished — steals the
// oldest sufficiently-aged lease from another worker so a straggler
// cannot stall the tail. Both paths grant a fresh lease to w.
func (c *Coordinator) takeCell(w *workerState) (leaseRef, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sid := range c.order {
		sw := c.sweeps[sid]
		for len(sw.ready) > 0 {
			id := sw.ready[0]
			sw.ready = sw.ready[1:]
			cell := sw.cells[id]
			if cell.state != cellReady {
				continue // stale queue entry (completed while queued, etc.)
			}
			if ref, ok := c.leaseLocked(sw, cell, w, recLease, now); ok {
				return ref, true
			}
		}
	}
	// Steal: oldest lease past StealAge held by someone else, cell-ID
	// tie-break for determinism under map iteration.
	var victim *cellState
	for _, cell := range c.leases {
		if cell.worker == w.url || now.Sub(cell.started) < c.cfg.StealAge {
			continue
		}
		if victim == nil || cell.started.Before(victim.started) ||
			(cell.started.Equal(victim.started) && cell.id < victim.id) {
			victim = cell
		}
	}
	if victim == nil {
		return leaseRef{}, false
	}
	if wOld := c.workers[victim.worker]; wOld != nil {
		wOld.leased--
	}
	oldWorker := victim.worker
	delete(c.leases, victim.sweepID+"/"+victim.id)
	victim.state = cellReady // leaseLocked re-leases it
	ref, ok := c.leaseLocked(c.sweeps[victim.sweepID], victim, w, recSteal, now)
	if !ok {
		return leaseRef{}, false
	}
	c.mSteals.Inc()
	c.log.Info("lease stolen from straggler", "sweep", victim.sweepID,
		"cell", victim.id, "from", oldWorker, "to", w.url)
	return ref, true
}

// leaseLocked grants w a lease on cell and ledgers it. Caller holds
// c.mu and guarantees cell.state == cellReady.
func (c *Coordinator) leaseLocked(sw *sweepState, cell *cellState, w *workerState, kind string, now time.Time) (leaseRef, bool) {
	if err := c.ledger.Append(LedgerRecord{
		Kind: kind, Sweep: sw.id, Cell: cell.id, Worker: w.url,
	}); err != nil {
		c.log.Error("ledgering lease failed", "cell", cell.id, "error", err)
		c.noteStorageFailure(err)
		sw.ready = append(sw.ready, cell.id) // keep the cell schedulable
		return leaseRef{}, false
	}
	cell.state = cellLeased
	cell.worker = w.url
	cell.tok++
	cell.started = now
	cell.expiry = now.Add(c.cfg.Lease)
	c.leases[sw.id+"/"+cell.id] = cell
	w.leased++
	if kind == recLease {
		c.mLeases.Inc()
	}
	c.refreshGauges()
	// The idempotency key carries the lease token: retries WITHIN one
	// lease generation dedupe on the worker, while a new generation
	// submits fresh — so a job poisoned by request corruption under the
	// old key can never wedge the cell.
	return leaseRef{
		sweepID: sw.id, cellID: cell.id, tok: cell.tok, spec: cell.spec,
		key: fmt.Sprintf("fl-%s-%s-t%d", sw.id, cell.id, cell.tok),
	}, true
}

// renew extends the lease if ref still owns it.
func (c *Coordinator) renew(ref leaseRef) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := c.leases[ref.sweepID+"/"+ref.cellID]
	if cell == nil || cell.tok != ref.tok {
		return false
	}
	cell.expiry = time.Now().Add(c.cfg.Lease)
	return true
}

// stillMine reports whether ref's lease generation is still current.
func (c *Coordinator) stillMine(ref leaseRef) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := c.leases[ref.sweepID+"/"+ref.cellID]
	return cell != nil && cell.tok == ref.tok
}

// runCell dispatches one leased cell to w and polls it to a terminal
// state. Every successful poll is the heartbeat that renews the lease;
// when renewal fails (expired or stolen) the loop abandons the cell —
// unless the job already succeeded, in which case committing the result
// is still correct (it is deterministic) and saves the new owner the
// work.
func (c *Coordinator) runCell(w *workerState, ref leaseRef) {
	js, err := w.cl.Submit(c.baseCtx, ref.spec.Spec, ref.key)
	if err != nil {
		c.mDispatchErrors.Inc()
		c.log.Warn("dispatch failed", "worker", w.url, "cell", ref.cellID, "error", err)
		c.release(ref)
		return
	}
	// The cell ID is the normalized spec digest, and the worker echoes
	// its normalized spec back: a mismatch means the request (or the
	// echo) was corrupted in transit, and polling this job could merge
	// stats for a job we never asked for. Release and re-dispatch — the
	// idempotency key is salted with the lease token, so the next lease
	// generation submits the clean spec under a fresh key instead of
	// rejoining the corrupted job.
	if js.Spec.Digest() != ref.cellID {
		c.mSpecRejects.Inc()
		c.mDispatchErrors.Inc()
		c.log.Warn("dispatch echoed a different spec digest; releasing cell",
			"worker", w.url, "cell", ref.cellID, "echoed", js.Spec.Digest())
		c.release(ref)
		return
	}
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		st, err := w.cl.Status(c.baseCtx, js.ID)
		if err != nil {
			// The janitor owns expiry; this loop just checks whether it
			// still owns the lease before polling on.
			if !c.stillMine(ref) {
				return
			}
			continue
		}
		mine := c.renew(ref)
		if st.Terminal() {
			if st.State == server.StateSucceeded && st.Result != nil && st.Result.Stats != nil {
				if !st.Result.Verify() {
					// The worker sealed this result before persisting it, so
					// a digest mismatch means the envelope was corrupted in
					// transit. Never merge it; re-poll for a clean copy.
					c.mDigestRejects.Inc()
					c.log.Warn("cell result digest mismatch; discarding poll",
						"worker", w.url, "cell", ref.cellID, "digest", st.Result.Digest)
					if !mine {
						return
					}
					continue
				}
				c.mDigestVerified.Inc()
				c.complete(ref, w, *st.Result.Stats)
			} else if mine {
				msg := "job failed"
				if st.Error != nil {
					msg = st.Error.Message
				}
				c.fail(ref, msg)
			}
			return
		}
		if !mine {
			return
		}
	}
}

// release returns a cell to ready after an infrastructure failure
// (submission never landed). Infrastructure errors do not consume cell
// attempts — the cell did nothing wrong.
func (c *Coordinator) release(ref leaseRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := c.leases[ref.sweepID+"/"+ref.cellID]
	if cell == nil || cell.tok != ref.tok {
		return
	}
	sw := c.sweeps[ref.sweepID]
	if w := c.workers[cell.worker]; w != nil {
		w.leased--
	}
	delete(c.leases, ref.sweepID+"/"+ref.cellID)
	cell.state = cellReady
	cell.worker = ""
	cell.tok++
	sw.ready = append(sw.ready, cell.id)
	c.refreshGauges()
}

// complete commits one cell result. First writer wins; every later
// completion of the same cell — stale lease, steal race, idempotent
// re-execution — is a harmless no-op, which is exactly why the merge
// can never double-count. The ledger append happens before any state
// change (write-ahead), so a crash between the two re-derives the same
// outcome on replay.
func (c *Coordinator) complete(ref leaseRef, w *workerState, st pipeline.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.sweeps[ref.sweepID]
	cell := sw.cells[ref.cellID]
	if cell.state == cellDone || cell.state == cellFailed {
		return
	}
	stc := st
	if err := c.ledger.Append(LedgerRecord{
		Kind: recDone, Sweep: ref.sweepID, Cell: ref.cellID, Worker: w.url, Stats: &stc,
	}); err != nil {
		c.log.Error("ledgering cell result failed", "cell", ref.cellID, "error", err)
		c.noteStorageFailure(err)
		return // lease expiry will re-run the cell; never commit undurable results
	}
	if cell.state == cellLeased {
		if wOld := c.workers[cell.worker]; wOld != nil {
			wOld.leased--
		}
		delete(c.leases, ref.sweepID+"/"+ref.cellID)
	}
	cell.state = cellDone
	cell.worker = w.url
	sw.done[ref.cellID] = st
	sw.doneN++
	w.doneN++
	c.mCellsDone.Inc()
	c.refreshGauges()
	c.log.Info("cell done", "sweep", ref.sweepID, "cell", ref.cellID,
		"worker", w.url, "done", sw.doneN, "total", sw.total)
}

// fail records one failed attempt; the cell retries until CellAttempts,
// then is terminally failed (and footnoted by the merge).
func (c *Coordinator) fail(ref leaseRef, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.sweeps[ref.sweepID]
	cell := sw.cells[ref.cellID]
	if cell.state != cellLeased || cell.tok != ref.tok {
		return
	}
	if w := c.workers[cell.worker]; w != nil {
		w.leased--
	}
	delete(c.leases, ref.sweepID+"/"+ref.cellID)
	cell.attempts++
	cell.worker = ""
	cell.tok++
	if cell.attempts < c.cfg.CellAttempts {
		cell.state = cellReady
		sw.ready = append(sw.ready, cell.id)
		c.mCellRetries.Inc()
		c.log.Warn("cell attempt failed; retrying", "sweep", ref.sweepID,
			"cell", ref.cellID, "attempt", cell.attempts, "reason", reason)
		c.refreshGauges()
		return
	}
	if err := c.ledger.Append(LedgerRecord{
		Kind: recFailed, Sweep: ref.sweepID, Cell: ref.cellID, Reason: reason,
	}); err != nil {
		c.log.Error("ledgering cell failure failed", "cell", ref.cellID, "error", err)
		c.noteStorageFailure(err)
		cell.state = cellReady // keep it schedulable rather than losing it
		sw.ready = append(sw.ready, cell.id)
		return
	}
	cell.state = cellFailed
	sw.failed[ref.cellID] = reason
	sw.failedN++
	c.mCellsFailed.Inc()
	c.log.Error("cell failed terminally", "sweep", ref.sweepID, "cell", ref.cellID, "reason", reason)
	c.refreshGauges()
}
