package fleet

import (
	"errors"
	"os"
	"strings"
	"testing"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/wal"
)

func testSweep(t *testing.T) SweepSpec {
	t.Helper()
	s := SweepSpec{Workloads: []string{"go", "li"}, Predictors: []string{"rvp"}, Insts: 5_000}
	s.Normalize(0)
	if err := s.Validate(); err != nil {
		t.Fatalf("test sweep invalid: %v", err)
	}
	return s
}

func TestLedgerReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSweep(t)
	id := spec.ID()
	cells := spec.Cells()

	l, rp, err := OpenLedger(LedgerPath(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(rp.Sweeps) != 0 {
		t.Fatalf("fresh ledger replayed %d sweeps", len(rp.Sweeps))
	}
	st := pipeline.Stats{Cycles: 123, Committed: 456}
	recs := []LedgerRecord{
		{Kind: recSweep, Sweep: id, Spec: &spec},
		{Kind: recLease, Sweep: id, Cell: cells[0].ID, Worker: "http://w1"},
		{Kind: recExpire, Sweep: id, Cell: cells[0].ID, Worker: "http://w1"},
		{Kind: recLease, Sweep: id, Cell: cells[0].ID, Worker: "http://w2"},
		{Kind: recDone, Sweep: id, Cell: cells[0].ID, Worker: "http://w2", Stats: &st},
		{Kind: recLease, Sweep: id, Cell: cells[1].ID, Worker: "http://w2"},
		{Kind: recSteal, Sweep: id, Cell: cells[1].ID, Worker: "http://w1"},
		{Kind: recFailed, Sweep: id, Cell: cells[1].ID, Reason: "boom"},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
	l.Close()

	l2, rp2, err := OpenLedger(LedgerPath(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Truncated != 0 {
		t.Errorf("clean log reported %d truncated records", l2.Truncated)
	}
	if len(rp2.Order) != 1 || rp2.Order[0] != id {
		t.Errorf("order = %v, want [%s]", rp2.Order, id)
	}
	if got := rp2.Sweeps[id].ID(); got != id {
		t.Errorf("replayed spec ID = %s, want %s", got, id)
	}
	if got := rp2.Done[id][cells[0].ID]; got != st {
		t.Errorf("replayed stats = %+v, want %+v", got, st)
	}
	if got := rp2.Failed[id][cells[1].ID]; got != "boom" {
		t.Errorf("replayed failure = %q, want boom", got)
	}
	if rp2.Leases != 3 || rp2.Expiries != 1 || rp2.Steals != 1 {
		t.Errorf("counters = %d leases, %d expiries, %d steals; want 3,1,1",
			rp2.Leases, rp2.Expiries, rp2.Steals)
	}
	if rp2.DuplicateDone != 0 {
		t.Errorf("duplicate done = %d on a clean log", rp2.DuplicateDone)
	}
}

func TestLedgerDoneWinsOverFailedAndDuplicatesCounted(t *testing.T) {
	dir := t.TempDir()
	spec := testSweep(t)
	id := spec.ID()
	cell := spec.Cells()[0].ID
	st := pipeline.Stats{Cycles: 9, Committed: 9}

	l, _, err := OpenLedger(LedgerPath(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, r := range []LedgerRecord{
		{Kind: recSweep, Sweep: id, Spec: &spec},
		{Kind: recFailed, Sweep: id, Cell: cell, Reason: "first attempt"},
		{Kind: recDone, Sweep: id, Cell: cell, Stats: &st},
		{Kind: recDone, Sweep: id, Cell: cell, Stats: &st}, // idempotent duplicate
		{Kind: recFailed, Sweep: id, Cell: cell, Reason: "late straggler"},
	} {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	l.Close()

	l2, rp, err := OpenLedger(LedgerPath(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if _, failed := rp.Failed[id][cell]; failed {
		t.Errorf("cell still failed after a done record")
	}
	if got := rp.Done[id][cell]; got != st {
		t.Errorf("done stats = %+v, want %+v", got, st)
	}
	if rp.DuplicateDone != 1 {
		t.Errorf("duplicate done = %d, want 1", rp.DuplicateDone)
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	spec := testSweep(t)
	id := spec.ID()
	cell := spec.Cells()[0].ID

	path := LedgerPath(dir)
	l, _, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append(LedgerRecord{Kind: recSweep, Sweep: id, Spec: &spec}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(LedgerRecord{Kind: recLease, Sweep: id, Cell: cell, Worker: "w"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()

	// Tear the final record mid-line, as a crash mid-write would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}

	l2, rp, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if l2.Truncated != 1 {
		t.Errorf("truncated = %d, want 1", l2.Truncated)
	}
	if rp.Leases != 0 {
		t.Errorf("torn lease record survived replay")
	}
	if _, ok := rp.Sweeps[id]; !ok {
		t.Errorf("intact sweep record lost with the torn tail")
	}
	// The repaired log must accept appends and replay cleanly.
	if err := l2.Append(LedgerRecord{Kind: recLease, Sweep: id, Cell: cell, Worker: "w2"}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l2.Close()
	l3, rp3, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("reopen repaired: %v", err)
	}
	defer l3.Close()
	if l3.Truncated != 0 || rp3.Leases != 1 {
		t.Errorf("repaired log: truncated=%d leases=%d, want 0 and 1", l3.Truncated, rp3.Leases)
	}
}

func TestLedgerCorruptMiddleRefusesOpen(t *testing.T) {
	// Corruption strictly before the tail means acknowledged records
	// follow the damage: not a torn append but bitrot or an outside
	// writer. Truncating would silently destroy committed state, so the
	// ledger must refuse with a typed corruption error and leave the
	// file for `rvpadmin fsck`.
	dir := t.TempDir()
	spec := testSweep(t)
	id := spec.ID()
	path := LedgerPath(dir)
	l, _, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(LedgerRecord{Kind: recLease, Sweep: id, Cell: spec.Cells()[0].ID, Worker: "w"}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	raw, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip payload bytes without touching the stored CRC: the envelope's
	// checksum no longer matches, so the record must be rejected.
	lines[1] = strings.Replace(lines[1], `"kind":"lease"`, `"kind":"leaze"`, 1)
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)

	_, _, err = OpenLedger(path)
	if err == nil {
		t.Fatal("reopen accepted a ledger with interior corruption")
	}
	if !errors.Is(err, simerr.ErrCorrupt) {
		t.Errorf("reopen error %v does not wrap simerr.ErrCorrupt", err)
	}
	var ce *wal.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("reopen error %v is not a *wal.CorruptError", err)
	}
	if ce.Line != 2 {
		t.Errorf("corruption reported at record %d, want 2", ce.Line)
	}
	// The file must be untouched: all three lines still present for fsck.
	after, _ := os.ReadFile(path)
	if string(after) != strings.Join(lines, "") {
		t.Error("open modified a ledger it refused to load")
	}
}
