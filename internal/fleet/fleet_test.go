package fleet

import (
	"context"
	"sort"
	"strings"
	"testing"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/workloads"

	"errors"
)

func TestNormalizeDefaults(t *testing.T) {
	var s SweepSpec
	s.Normalize(7_000)
	if got, want := len(s.Workloads), len(workloads.Names()); got != want {
		t.Errorf("workloads defaulted to %d, want all %d", got, want)
	}
	if len(s.Predictors) == 0 {
		t.Errorf("predictors not defaulted")
	}
	if len(s.Recoveries) != 1 || s.Recoveries[0] != "selective" {
		t.Errorf("recoveries = %v, want [selective]", s.Recoveries)
	}
	if s.Insts != 7_000 {
		t.Errorf("insts = %d, want the coordinator default 7000", s.Insts)
	}
	if s.ProfileInsts != 7_000/4 {
		t.Errorf("profile insts = %d, want insts/4", s.ProfileInsts)
	}
	if s.Threshold != 0.80 {
		t.Errorf("threshold = %v, want 0.80", s.Threshold)
	}
	if !strings.HasPrefix(s.Name, "Fleet sweep ") {
		t.Errorf("name = %q, want defaulted from the sweep ID", s.Name)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("normalized spec fails validation: %v", err)
	}
}

func TestValidateRejectsBadAxes(t *testing.T) {
	cases := []SweepSpec{
		{Workloads: []string{"nope"}, Predictors: []string{"rvp"}, Recoveries: []string{"selective"}},
		{Workloads: []string{"go"}, Predictors: []string{"psychic"}, Recoveries: []string{"selective"}},
		{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Recoveries: []string{"prayer"}},
		{Workloads: []string{"go", "go"}, Predictors: []string{"rvp"}, Recoveries: []string{"selective"}},
		{}, // empty axes: must normalize first
	}
	for i, s := range cases {
		s.Insts = 1_000
		s.ProfileInsts = 250
		s.Threshold = 0.8
		err := s.Validate()
		if err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
			continue
		}
		if !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("case %d: error %v does not wrap ErrConfig", i, err)
		}
	}
}

func TestSweepIDStableAndNormalizeIdempotent(t *testing.T) {
	a := SweepSpec{Workloads: []string{"go", "li"}, Predictors: []string{"rvp", "none"}, Insts: 10_000}
	b := a
	a.Normalize(0)
	b.Normalize(0)
	if a.ID() != b.ID() {
		t.Errorf("same spec, different IDs: %s vs %s", a.ID(), b.ID())
	}
	a2 := a
	a2.Normalize(0)
	if a2.ID() != a.ID() {
		t.Errorf("Normalize is not idempotent: %s vs %s", a2.ID(), a.ID())
	}
	c := a
	c.Insts = 20_000
	c.ProfileInsts = 0
	c.Normalize(0)
	if c.ID() == a.ID() {
		t.Errorf("different budgets, same sweep ID %s", a.ID())
	}
}

func TestCellsDigestOrderedAndComplete(t *testing.T) {
	s := SweepSpec{
		Workloads:  []string{"go", "li", "perl"},
		Predictors: []string{"rvp", "none"},
		Recoveries: []string{"selective", "refetch"},
		Insts:      10_000,
	}
	s.Normalize(0)
	cells := s.Cells()
	if len(cells) != 3*2*2 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	if !sort.SliceIsSorted(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID }) {
		t.Errorf("cells are not digest-sorted")
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID] {
			t.Errorf("duplicate cell digest %s", c.ID)
		}
		seen[c.ID] = true
		if c.ID != c.Spec.Digest() {
			t.Errorf("cell ID %s != spec digest %s", c.ID, c.Spec.Digest())
		}
		if err := c.Spec.Validate(); err != nil {
			t.Errorf("cell %s spec invalid: %v", c.ID, err)
		}
	}
}

// fakeStats derives a deterministic, cell-specific result from a digest
// so merge tests do not need a simulator.
func fakeStats(id string) pipeline.Stats {
	return pipeline.Stats{Cycles: 1_000 + int64(id[0]), Committed: 900 + uint64(id[1])}
}

func TestMergeTableByteIdenticalRegardlessOfArrival(t *testing.T) {
	s := SweepSpec{
		Workloads:  []string{"go", "li"},
		Predictors: []string{"rvp", "none"},
		Recoveries: []string{"selective", "refetch"},
		Insts:      10_000,
	}
	s.Normalize(0)
	cells := s.Cells()

	build := func(order []int) string {
		done := map[string]pipeline.Stats{}
		for _, i := range order {
			done[cells[i].ID] = fakeStats(cells[i].ID)
		}
		return MergeTable(s, done, nil).String()
	}
	fwd := make([]int, len(cells))
	rev := make([]int, len(cells))
	for i := range cells {
		fwd[i] = i
		rev[i] = len(cells) - 1 - i
	}
	if a, b := build(fwd), build(rev); a != b {
		t.Errorf("merge depends on arrival order:\n--- forward\n%s--- reverse\n%s", a, b)
	}
	if out := build(fwd); !strings.Contains(out, "rvp@selective") || !strings.Contains(out, "none@refetch") {
		t.Errorf("multi-recovery sweep rows missing pred@recovery labels:\n%s", out)
	}
}

func TestMergeTableMarksMissingAndFailedCells(t *testing.T) {
	s := SweepSpec{Workloads: []string{"go", "li"}, Predictors: []string{"rvp"}, Recoveries: []string{"selective"}, Insts: 10_000}
	s.Normalize(0)
	cells := s.Cells()
	done := map[string]pipeline.Stats{cells[0].ID: fakeStats(cells[0].ID)}
	failed := map[string]string{cells[1].ID: "worker exploded"}
	out := MergeTable(s, done, failed).String()
	if !strings.Contains(out, "ERR") {
		t.Errorf("failed cell not marked in table:\n%s", out)
	}
	// One of the two cells succeeded, so the average row must exist.
	if !strings.Contains(out, "average") {
		t.Errorf("no average column:\n%s", out)
	}
}

func TestReferenceIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("reference runs real simulations; skipped in -short")
	}
	s := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"none", "rvp"}, Insts: 5_000}
	a, err := Reference(context.Background(), s, 2)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	b, err := Reference(context.Background(), s, 1)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("reference table varies with parallelism:\n%s\nvs\n%s", a.String(), b.String())
	}
}
