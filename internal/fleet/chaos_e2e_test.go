// Fleet chaos e2e: real rvpd worker processes, an in-process
// coordinator, and deliberate violence. One third of the fleet is
// SIGKILLed while it holds a cell lease, and the coordinator itself is
// stopped and reopened mid-sweep. The sweep must still finish with
//
//   - a result table byte-identical to a single-node reference run,
//   - no cell lost and none double-counted (the ledger shows zero
//     duplicate commits), and
//   - /metrics counters for leases, expiries and steals that agree
//     with an independent replay of the ledger.
//
// This is the fleet analogue of the server's kill-and-resume e2e: the
// process boundary is real, the kill is a real SIGKILL, and the proof
// is a byte diff.
package fleet_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"rvpsim/internal/fleet"
	"rvpsim/internal/testutil/leak"
)

// startWorker launches one rvpd and waits for its bound address. Extra
// flags (tenant quotas, timeouts) append after the baseline set.
func startWorker(t *testing.T, bin, state, addrFile string, extra ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	os.Remove(addrFile)
	args := []string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-state", state, "-workers", "1", "-drain-timeout", "1s"}
	cmd := exec.Command(bin, append(args, extra...)...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting rvpd: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, "http://" + string(raw), &logs
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("rvpd never wrote its address; logs:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosFleetSurvivesWorkerAndCoordinatorLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos e2e skipped in -short mode")
	}
	leak.Check(t)
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rvpd")
	if out, err := exec.Command("go", "build", "-o", bin, "rvpsim/cmd/rvpd").CombinedOutput(); err != nil {
		t.Fatalf("building rvpd: %v\n%s", err, out)
	}

	// Three workers; one will die violently.
	type worker struct {
		cmd  *exec.Cmd
		url  string
		logs *bytes.Buffer
	}
	var ws []worker
	var urls []string
	for i := 0; i < 3; i++ {
		state := filepath.Join(tmp, "w", string(rune('a'+i)))
		cmd, url, logs := startWorker(t, bin, state, filepath.Join(tmp, "addr-"+string(rune('a'+i))))
		ws = append(ws, worker{cmd, url, logs})
		urls = append(urls, url)
	}
	defer func() {
		for _, w := range ws {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}
	}()

	coordCfg := func() fleet.Config {
		return fleet.Config{
			StateDir:  filepath.Join(tmp, "coord"),
			Workers:   urls,
			Lease:     2 * time.Second,
			Heartbeat: 200 * time.Millisecond,
			Poll:      20 * time.Millisecond,
			StealAge:  1 * time.Second,
		}
	}
	c, err := fleet.Open(coordCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stopped := false
	defer func() {
		if !stopped {
			c.Stop()
		}
	}()

	// 9 cells, each a real multi-hundred-millisecond simulation: the
	// sweep is genuinely mid-flight when the violence starts.
	spec := fleet.SweepSpec{
		Workloads:  []string{"go", "li", "perl"},
		Predictors: []string{"none", "rvp", "stride"},
		Insts:      300_000,
	}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	id := st.ID

	// Wait until some worker holds a lease, then SIGKILL that worker —
	// the cell it held must be recovered by expiry or steal, never lost.
	var killed string
	deadline := time.Now().Add(60 * time.Second)
	for killed == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no worker ever held a lease")
		}
		got, _ := c.Status(id)
		if got.Terminal() {
			t.Fatalf("sweep finished before the kill could land; grow the budget")
		}
		for _, w := range got.Workers {
			if w.Leased > 0 {
				killed = w.URL
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, w := range ws {
		if w.url == killed {
			if err := w.cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL %s: %v", killed, err)
			}
			w.cmd.Wait()
			t.Logf("killed worker %s while it held a lease", killed)
		}
	}

	// The dead worker's cell must be recovered by the live coordinator —
	// lease expiry or steal, whichever fires first — before we also take
	// the coordinator down. (Restarting earlier would recover the cell
	// through replay instead, which is a different, already-tested path.)
	recovered := func() int64 {
		return c.Registry().Counter("fleet_lease_expiries_total", "").Value() +
			c.Registry().Counter("fleet_steals_total", "").Value()
	}
	for deadline = time.Now().Add(60 * time.Second); recovered() == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("dead worker's lease was never expired or stolen")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Now kill the coordinator too (Stop + reopen on the same state dir
	// models the crash: the ledger is write-ahead, so everything a real
	// SIGKILL would preserve is exactly what Stop preserves).
	c.Stop()
	stopped = true
	c2, err := fleet.Open(coordCfg())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Stop()

	// The sweep must finish on the surviving two thirds.
	waitDeadline := time.Now().Add(3 * time.Minute)
	var final fleet.SweepStatus
	for {
		var ok bool
		final, ok = c2.Status(id)
		if !ok {
			t.Fatalf("sweep %s lost across coordinator restart", id)
		}
		if final.Terminal() {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("sweep never finished after the chaos: %+v", final)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.State != "done" || final.Failed != 0 {
		t.Fatalf("sweep state = %s with %d failed, want done with none lost: %+v",
			final.State, final.Failed, final)
	}

	// Byte-identical to the single-node reference: same cells, same
	// merge, no fleet fingerprints.
	ref, err := fleet.Reference(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if final.TableText != ref.String() {
		t.Errorf("fleet table is not byte-identical to the single-node reference:\n--- fleet\n%s--- reference\n%s",
			final.TableText, ref.String())
	}

	// Counters must agree with an independent replay of the ledger, and
	// the ledger must show every cell committed exactly once.
	leases := c2.Registry().Counter("fleet_leases_total", "").Value()
	expiries := c2.Registry().Counter("fleet_lease_expiries_total", "").Value()
	steals := c2.Registry().Counter("fleet_steals_total", "").Value()
	c2.Stop()

	l, rp, err := fleet.OpenLedger(fleet.LedgerPath(filepath.Join(tmp, "coord")))
	if err != nil {
		t.Fatalf("replaying ledger: %v", err)
	}
	defer l.Close()
	if rp.Leases != leases || rp.Expiries != expiries || rp.Steals != steals {
		t.Errorf("metrics disagree with the ledger: metrics leases=%d expiries=%d steals=%d, ledger %d/%d/%d",
			leases, expiries, steals, rp.Leases, rp.Expiries, rp.Steals)
	}
	if rp.DuplicateDone != 0 {
		t.Errorf("ledger shows %d duplicate cell commits, want 0", rp.DuplicateDone)
	}
	if got, want := len(rp.Done[id]), final.Total; got != want {
		t.Errorf("ledger holds %d done cells, want %d", got, want)
	}
	if expiries == 0 && steals == 0 {
		t.Errorf("neither a lease expiry nor a steal fired: the kill was not felt (leases=%d)", leases)
	}
	t.Logf("chaos summary: %d leases, %d expiries, %d steals, %d cells", leases, expiries, steals, final.Total)
}
