// White-box audits of the fleet's two partition defenses:
//
//   - digest-verified merges: a cell result whose envelope digest does
//     not match its content (corrupted in transit) is never committed,
//     no matter how often the worker serves it;
//   - lease-token fencing under an asymmetric partition: a stale owner
//     whose heartbeats still reach the coordinator (renew calls arrive)
//     but whose lease was stolen cannot renew, cannot fail the cell,
//     and cannot double-count it — yet its deterministic success is
//     still accepted, because a correct result is a correct result.
package fleet

import (
	"testing"
	"time"

	"rvpsim/internal/testutil/leak"
)

func TestDigestMismatchedResultIsNeverMerged(t *testing.T) {
	leak.Check(t)
	// The worker reports success but every poll returns an envelope
	// whose digest disagrees with its content.
	w := newFakeWorker("tamper")
	defer w.ts.Close()
	c := testCoord(t, t.TempDir(), w.ts.URL)
	defer c.Stop()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	rejects := c.Registry().Counter("fleet_digest_rejects_total", "")
	waitFor(t, "repeated digest rejects", func() bool { return rejects.Value() >= 3 })

	// Despite a steady stream of "successful" polls, nothing merged.
	got, _ := c.Status(st.ID)
	if got.Done != 0 {
		t.Fatalf("corrupted result was merged: %+v", got)
	}
	if v := c.Registry().Counter("fleet_digest_verified_total", "").Value(); v != 0 {
		t.Fatalf("fleet_digest_verified_total = %d while every envelope was corrupt", v)
	}

	// The corruption clears (transit fault, not worker state): the very
	// same cell must now verify and complete.
	w.setMode("sealed")
	waitFor(t, "sweep done once the envelope verifies", func() bool {
		got, _ := c.Status(st.ID)
		return got.State == "done"
	})
	if v := c.Registry().Counter("fleet_digest_verified_total", "").Value(); v < 1 {
		t.Errorf("fleet_digest_verified_total = %d, want >= 1", v)
	}
	got, _ = c.Status(st.ID)
	if got.Done != 1 || got.Failed != 0 {
		t.Errorf("status = %+v, want exactly one done cell", got)
	}
}

func TestLeaseFencingUnderAsymmetricPartition(t *testing.T) {
	leak.Check(t)
	// The straggler hangs: its heartbeats (status polls -> renew) keep
	// reaching the coordinator, but the cell makes no progress — the
	// one-way partition where the control plane is healthy and the data
	// plane is not. A second hanging worker steals the lease, and from
	// then on the original owner's token is stale.
	slow := newFakeWorker("hang")
	defer slow.ts.Close()
	dir := t.TempDir()
	c, err := Open(Config{
		StateDir:     dir,
		Workers:      []string{slow.ts.URL},
		Lease:        time.Hour, // expiry must not interfere with the audit
		Heartbeat:    40 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		StealAge:     120 * time.Millisecond,
		CellAttempts: 2,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Stop()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	waitFor(t, "straggler to hold the lease", func() bool {
		got, _ := c.Status(st.ID)
		return got.Leased == 1
	})

	// Capture the owner's lease token before the steal.
	var stale leaseRef
	c.mu.Lock()
	for _, cell := range c.leases {
		stale = leaseRef{sweepID: st.ID, cellID: cell.id, tok: cell.tok, spec: cell.spec}
	}
	c.mu.Unlock()
	if stale.cellID == "" {
		t.Fatalf("no lease found after Leased == 1")
	}

	// A second straggler steals the cell (StealAge passes, the thief is
	// idle) — the steal bumps the token, fencing the original owner.
	thief := newFakeWorker("hang")
	defer thief.ts.Close()
	if err := c.AddWorker(thief.ts.URL); err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	steals := c.Registry().Counter("fleet_steals_total", "")
	waitFor(t, "the steal", func() bool { return steals.Value() >= 1 })

	// Fencing: the stale token can neither renew nor keep the lease.
	if c.renew(stale) {
		t.Errorf("stale owner renewed its lease after the steal")
	}
	if c.stillMine(stale) {
		t.Errorf("stale owner still owns the lease after the steal")
	}

	// A stale failure report must not burn an attempt or fail the cell.
	c.fail(stale, "stale owner cries wolf")
	got, _ := c.Status(st.ID)
	if got.Failed != 0 {
		t.Fatalf("stale fail() failed the cell: %+v", got)
	}
	if retries := c.Registry().Counter("fleet_cell_retries_total", "").Value(); retries != 0 {
		t.Errorf("stale fail() consumed a cell attempt: retries = %d", retries)
	}

	// But a stale SUCCESS still commits: the result is deterministic, so
	// first writer wins regardless of who holds the lease now.
	c.mu.Lock()
	owner := c.workers[slow.ts.URL]
	c.mu.Unlock()
	c.complete(stale, owner, fakeStats(stale.cellID))
	got, _ = c.Status(st.ID)
	if got.Done != 1 {
		t.Fatalf("stale owner's success was not committed: %+v", got)
	}

	// And the new owner's later completion of the same cell is a no-op.
	c.mu.Lock()
	thiefW := c.workers[thief.ts.URL]
	c.mu.Unlock()
	c.complete(leaseRef{sweepID: st.ID, cellID: stale.cellID, tok: stale.tok + 1, spec: stale.spec}, thiefW, fakeStats(stale.cellID))
	got, _ = c.Status(st.ID)
	if got.Done != 1 {
		t.Fatalf("double-count after the thief reported the same cell: %+v", got)
	}
	if got.State != "done" {
		t.Fatalf("sweep state = %s, want done", got.State)
	}
}
