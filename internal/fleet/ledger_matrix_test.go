package fleet

import (
	"testing"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal/waltest"
)

// TestLedgerTornTailMatrix runs the shared torn/corrupt-tail
// conformance matrix against the cell ledger, identical to the job
// store's and sweep journal's runs.
func TestLedgerTornTailMatrix(t *testing.T) {
	waltest.Run(t, "/state/cells.jsonl", waltest.Store{
		Records: func(n int) []any {
			out := make([]any, n)
			for i := range out {
				out[i] = LedgerRecord{
					Kind:  recDone,
					Sweep: "s",
					Cell:  waltest.Fmt("cell", i),
					Stats: &pipeline.Stats{},
				}
			}
			return out
		},
		Open: func(fsys vfs.FS, path string) (int, int, error) {
			l, rp, err := OpenLedgerFS(path, fsys, nil)
			if err != nil {
				return 0, 0, err
			}
			defer l.Close()
			return len(rp.Done["s"]), l.Truncated, nil
		},
	})
}
