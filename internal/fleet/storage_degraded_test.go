package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rvpsim/internal/vfs"
)

// TestCoordinatorENOSPCDegradesAndRecovers: a coordinator whose ledger
// disk stops taking writes sheds new sweeps with a typed error (503 +
// Retry-After over HTTP) instead of crashing, answers resubmits of
// known sweeps from memory, and resumes admissions once the janitor's
// storage probe sees the disk return.
func TestCoordinatorENOSPCDegradesAndRecovers(t *testing.T) {
	fault := vfs.NewFault(vfs.OS)
	c, err := Open(Config{
		StateDir:  t.TempDir(),
		FS:        fault,
		Lease:     400 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond, // janitor (and probe) cadence
		Poll:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Stop()
	ts := httptest.NewServer(Handler(c))
	defer ts.Close()

	spec := SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5_000}
	st, err := c.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}

	fault.SetPersistent(vfs.ENOSPC)
	other := SweepSpec{Workloads: []string{"li"}, Predictors: []string{"rvp"}, Insts: 5_000}
	if _, err := c.SubmitSweep(other); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("submit under ENOSPC: %v, want ErrStorageDegraded", err)
	}
	if !c.StorageDegraded() {
		t.Fatalf("coordinator not marked degraded")
	}

	// Resubmits of an already-admitted sweep still answer from memory.
	if st2, err := c.SubmitSweep(spec); err != nil || st2.ID != st.ID {
		t.Fatalf("idempotent resubmit while degraded: %+v, %v", st2, err)
	}

	// Over HTTP the shed is a 503 with a retry hint, and readyz flips.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		jsonBody(t, SweepSpec{Workloads: []string{"perl"}, Predictors: []string{"rvp"}, Insts: 5_000}))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded submit: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: %d", resp.StatusCode)
	}

	// Disk returns; the janitor's probe must clear the flag.
	fault.SetPersistent(nil)
	deadline := time.Now().Add(10 * time.Second)
	for c.StorageDegraded() {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.SubmitSweep(other); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
}

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
