// Package fleet runs one sweep across many rvpd workers without ever
// producing a different answer than one machine would. The coordinator
// shards a sweep spec into cells — one workload × predictor × recovery
// simulation each, identified by the digest of its normalized job spec —
// and dispatches them to registered workers over the existing HTTP job
// API via internal/client.
//
// Robustness is the design center, and it is the distributed analogue of
// the misprediction-recovery discipline the simulated pipeline itself
// enforces (mispredict → squash → re-execute, never commit a wrong
// value): a lost worker is a mispredicted cell. Concretely:
//
//   - Workers hold time-bounded leases on cells, renewed by the
//     heartbeat of successful status polls. A lease that expires —
//     worker killed, partitioned, or wedged — returns its cell to the
//     ready set for reassignment. Nothing is committed on assignment,
//     only on a durably journaled result.
//   - Dispatch is idempotency-keyed per (sweep, cell), and every cell's
//     simulation is deterministic, so double execution — two workers
//     racing after an expiry or a steal — is harmless: both produce the
//     identical result and the ledger commits exactly one.
//   - An idle worker steals the oldest straggling lease rather than
//     waiting, so one slow node cannot stall a sweep's tail.
//   - The coordinator's own state is a CRC-enveloped write-ahead cell
//     ledger (the jobstore/journal envelope idiom): kill and restart
//     the coordinator and it resumes the sweep with every finished cell
//     intact.
//   - The merge stage aggregates cells in digest order into the result
//     table, so the assembled table is byte-identical no matter which
//     worker ran what, in what order, or how many times.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"rvpsim/internal/exp"
	"rvpsim/internal/simerr"
	"rvpsim/internal/workloads"
)

// SweepSpec names a grid of simulation cells: the cartesian product of
// workloads × predictors × recovery schemes, each run with the same
// instruction budgets and profile threshold. It is the wire format the
// coordinator accepts.
type SweepSpec struct {
	// Name titles the result table (defaulted from the sweep ID).
	Name string `json:"name,omitempty"`
	// Workloads lists benchmark names (empty = all nine).
	Workloads []string `json:"workloads,omitempty"`
	// Predictors lists value-predictor names (empty = every predictor
	// the job API accepts; see exp.JobPredictors).
	Predictors []string `json:"predictors,omitempty"`
	// Recoveries lists misprediction recovery schemes (empty =
	// selective only; see exp.JobRecoveries).
	Recoveries []string `json:"recoveries,omitempty"`
	// Insts is the committed-instruction budget per cell (0 takes the
	// coordinator's default).
	Insts uint64 `json:"insts,omitempty"`
	// ProfileInsts is the profiling-pass budget per cell (0 = Insts/4).
	ProfileInsts uint64 `json:"profile_insts,omitempty"`
	// Threshold is the profiler's predictability threshold (0 = 0.80).
	Threshold float64 `json:"threshold,omitempty"`
}

// MaxSweepCells bounds how many cells one sweep may shard into; the
// ledger, scheduler and merge are sized for million-cell sweeps, and
// admission rejects anything larger before any state is created.
const MaxSweepCells = 1_000_000

// Cell is one schedulable unit of a sweep: a single-run job spec plus
// its identity, the digest of the normalized spec. The digest is the
// cell's name everywhere — ledger records, idempotency keys, merge
// ordering — which is what makes every layer agree on what "this cell"
// means across workers, retries and coordinator restarts.
type Cell struct {
	ID   string
	Spec exp.JobSpec
}

// Normalize fills defaults in place: all workloads, every predictor,
// selective recovery, defaultInsts (then the runner default) for a zero
// budget, ProfileInsts and Threshold per the job-spec rules. Normalize
// before ID or Cells so equivalent sweeps share state.
func (s *SweepSpec) Normalize(defaultInsts uint64) {
	if len(s.Workloads) == 0 {
		s.Workloads = workloads.Names()
	}
	if len(s.Predictors) == 0 {
		s.Predictors = exp.JobPredictors()
	}
	if len(s.Recoveries) == 0 {
		s.Recoveries = []string{"selective"}
	}
	if s.Insts == 0 {
		s.Insts = defaultInsts
	}
	if s.Insts == 0 {
		s.Insts = exp.DefaultOptions().Insts
	}
	if s.ProfileInsts == 0 {
		s.ProfileInsts = s.Insts / 4
	}
	if s.Threshold == 0 {
		s.Threshold = 0.80
	}
	if s.Name == "" {
		s.Name = "Fleet sweep " + s.ID()
	}
}

// Validate checks every axis against the job API's vocabulary by
// validating one probe cell per axis value, plus the grid size. Errors
// wrap simerr.ErrConfig so the HTTP layer maps them to 400s.
func (s SweepSpec) Validate() error {
	bad := func(format string, args ...any) error {
		return simerr.New("fleet", fmt.Errorf(format+": %w", append(args, simerr.ErrConfig)...))
	}
	if len(s.Workloads) == 0 || len(s.Predictors) == 0 || len(s.Recoveries) == 0 {
		return bad("empty sweep axis (normalize first)")
	}
	n := len(s.Workloads) * len(s.Predictors) * len(s.Recoveries)
	if n > MaxSweepCells {
		return bad("sweep shards into %d cells, above the %d limit", n, MaxSweepCells)
	}
	if dup := firstDup(s.Workloads); dup != "" {
		return bad("duplicate workload %q", dup)
	}
	if dup := firstDup(s.Predictors); dup != "" {
		return bad("duplicate predictor %q", dup)
	}
	if dup := firstDup(s.Recoveries); dup != "" {
		return bad("duplicate recovery %q", dup)
	}
	// One probe spec per axis value is enough: cell validity is
	// separable per axis, so validating the full product would only
	// repeat the same checks len(grid) times.
	for _, wl := range s.Workloads {
		probe := s.cellSpec(wl, s.Predictors[0], s.Recoveries[0])
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	for _, p := range s.Predictors[1:] {
		probe := s.cellSpec(s.Workloads[0], p, s.Recoveries[0])
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	for _, rec := range s.Recoveries[1:] {
		probe := s.cellSpec(s.Workloads[0], s.Predictors[0], rec)
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func firstDup(vs []string) string {
	seen := make(map[string]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return v
		}
		seen[v] = true
	}
	return ""
}

// cellSpec builds the normalized job spec of one cell.
func (s SweepSpec) cellSpec(workload, predictor, recovery string) exp.JobSpec {
	js := exp.JobSpec{
		Kind:         "run",
		Workload:     workload,
		Predictor:    predictor,
		Recovery:     recovery,
		Insts:        s.Insts,
		ProfileInsts: s.ProfileInsts,
		Threshold:    s.Threshold,
	}
	js.Normalize(0)
	return js
}

// ID returns the sweep's stable hex fingerprint over its configuration
// — axes and budgets, deliberately not the cosmetic Name — so
// resubmitting the same grid under a different label joins the
// existing sweep rather than forking a duplicate. Normalize first: the
// ID keys the sweep's ledger state.
func (s SweepSpec) ID() string {
	canon := fmt.Sprintf("wl=%s|pred=%s|rec=%s|n=%d|pn=%d|th=%.6f",
		strings.Join(s.Workloads, ","), strings.Join(s.Predictors, ","),
		strings.Join(s.Recoveries, ","), s.Insts, s.ProfileInsts, s.Threshold)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:10])
}

// Cells shards the normalized sweep into its cells, sorted by cell
// digest. Digest order is the canonical order everywhere downstream —
// initial scheduling and the merge both walk it — so no layer depends
// on arrival order.
func (s SweepSpec) Cells() []Cell {
	out := make([]Cell, 0, len(s.Workloads)*len(s.Predictors)*len(s.Recoveries))
	for _, wl := range s.Workloads {
		for _, p := range s.Predictors {
			for _, rec := range s.Recoveries {
				js := s.cellSpec(wl, p, rec)
				out = append(out, Cell{ID: js.Digest(), Spec: js})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
