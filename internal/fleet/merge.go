package fleet

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"rvpsim/internal/exp"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/stats"
)

// MergeTable assembles the sweep's result table from per-cell results.
// The merge is a pure function of (spec, done, failed): cells are
// walked in digest order, each lands in exactly one (row, column) slot
// determined by its own spec, and averages are computed over the same
// digest-ordered traversal — so the rendered table is byte-identical no
// matter which worker produced which cell, in what order, or how many
// times a cell was (idempotently) re-executed. Rows are one predictor ×
// recovery series (recovery suffixed only when the sweep has more than
// one), columns the sweep's workloads plus a final mean. Cells with no
// result render as ERR with their failure reason.
func MergeTable(spec SweepSpec, done map[string]pipeline.Stats, failed map[string]string) *stats.Table {
	cols := append(append([]string(nil), spec.Workloads...), "average")
	t := stats.NewTable(spec.Name+" — IPC", cols)

	rowLabel := func(pred, rec string) string {
		if len(spec.Recoveries) > 1 {
			return pred + "@" + rec
		}
		return pred
	}

	// Digest-ordered aggregation: Cells() is already digest-sorted.
	type slot struct{ row, col string }
	vals := map[slot]float64{}
	reasons := map[slot]string{}
	for _, c := range spec.Cells() {
		s := slot{rowLabel(c.Spec.Predictor, c.Spec.Recovery), c.Spec.Workload}
		if st, ok := done[c.ID]; ok {
			vals[s] = st.IPC()
			continue
		}
		if why, ok := failed[c.ID]; ok {
			reasons[s] = why
		} else {
			reasons[s] = "cell not completed"
		}
	}

	// Row order follows the spec's own axis order, which is part of the
	// sweep identity (the digest covers it), not arrival order.
	for _, pred := range spec.Predictors {
		for _, rec := range spec.Recoveries {
			label := rowLabel(pred, rec)
			m := map[string]float64{}
			var all []float64
			for _, wl := range spec.Workloads {
				s := slot{label, wl}
				if v, ok := vals[s]; ok {
					m[wl] = v
					all = append(all, v)
				} else {
					t.MarkFailed(label, wl, reasons[s])
				}
			}
			if len(all) > 0 {
				m["average"] = stats.Mean(all)
			} else {
				t.MarkFailed(label, "average", "no completed cells")
			}
			t.AddRow(label, "%.3f", m)
		}
	}
	return t
}

// Reference runs the whole sweep in this process — no coordinator, no
// workers, no ledger — and merges with the same MergeTable the fleet
// uses. It is the ground truth a fleet run must match byte for byte:
// each cell is the same deterministic exp.RunJob the workers execute,
// so any divergence is a fleet bug, never simulator noise. parallel
// bounds concurrent cells (<=0 takes GOMAXPROCS); parallelism cannot
// perturb the table because cells are independent and the merge orders
// by digest.
func Reference(ctx context.Context, spec SweepSpec, parallel int) (*stats.Table, error) {
	spec.Normalize(0)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	cells := spec.Cells()
	done := make(map[string]pipeline.Stats, len(cells))
	failed := map[string]string{}
	var mu sync.Mutex
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	errs := make([]error, len(cells))
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := exp.RunJob(ctx, c.Spec, exp.Options{})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[i] = err
				failed[c.ID] = err.Error()
				return
			}
			done[c.ID] = *res.Stats
		}(i, c)
	}
	wg.Wait()
	return MergeTable(spec, done, failed), errors.Join(errs...)
}
