package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// CoordClient talks to one rvpcoord instance. It lives here rather than
// in internal/client because the coordinator itself depends on
// internal/client for worker dispatch; putting the coordinator's own
// wire client next to its wire types keeps the dependency a straight
// line (fleet -> client -> server) instead of a cycle.
type CoordClient struct {
	base string
	hc   *http.Client
}

// NewCoordClient builds a client for the coordinator at base URL.
func NewCoordClient(base string) *CoordClient {
	return &CoordClient{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

// SubmitSweep submits the sweep spec; resubmitting the same spec joins
// the existing sweep (submission is idempotent by sweep ID).
func (c *CoordClient) SubmitSweep(ctx context.Context, spec SweepSpec) (SweepStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return SweepStatus{}, err
	}
	var st SweepStatus
	err = c.do(ctx, http.MethodPost, "/v1/sweeps", body, &st)
	return st, err
}

// Status fetches one sweep's status.
func (c *CoordClient) Status(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Wait polls the sweep until every cell is terminal. Transport errors
// are tolerated (the coordinator may be restarting; its ledger will
// bring the sweep back). poll defaults to 500ms.
func (c *CoordClient) Wait(ctx context.Context, id string, poll time.Duration) (SweepStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err == nil && st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return SweepStatus{}, ctx.Err()
		case <-t.C:
		}
	}
}

// RegisterWorker registers an rvpd base URL with the coordinator.
func (c *CoordClient) RegisterWorker(ctx context.Context, url string) error {
	body, err := json.Marshal(map[string]string{"url": url})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/workers", body, nil)
}

// Sweeps lists known sweep IDs in admission order.
func (c *CoordClient) Sweeps(ctx context.Context) ([]string, error) {
	var ids []string
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &ids)
	return ids, err
}

func (c *CoordClient) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("coordinator returned %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("coordinator returned %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
