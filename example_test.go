package rvpsim_test

import (
	"fmt"
	"log"

	"rvpsim"
)

// Example demonstrates the core API end to end: assemble a program whose
// loads exhibit register-value reuse, then compare no-prediction against
// dynamic RVP. The simulator is fully deterministic, so the output is
// exact.
func Example() {
	prog, err := rvpsim.Assemble("demo", `
.text
.proc main
main:
        li      r9, 2000
outer:
        lda     r2, table
        li      r1, 8
loop:
        ldq     r3, 0(r2)           ; always loads 7: same-register reuse
        mul     r4, r3, r3
        add     r5, r5, r4
        addi    r2, r2, 8
        subi    r1, r1, 1
        bne     r1, loop
        subi    r9, r9, 1
        bne     r9, outer
        halt
.endproc
.data
.org 0x100000
table:  .quad 7, 7, 7, 7, 7, 7, 7, 7
`)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	base, err := rvpsim.Run(prog, cfg, rvpsim.NoPrediction(), 50_000)
	if err != nil {
		log.Fatal(err)
	}
	rvp, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), 50_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %.1f%% accuracy %.1f%%\n", 100*rvp.Coverage(), 100*rvp.Accuracy())
	fmt.Printf("speedup %.2f\n", float64(base.Cycles)/float64(rvp.Cycles))
	// Output:
	// coverage 30.7% accuracy 100.0%
	// speedup 1.20
}
